package eval

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/workload"
)

// accuracyEnv is the dataset + high-support query workload the statistical
// accuracy regressions share. Built once per test process (sync.OnceValue):
// both regressions measure against the identical seeded inputs, and the
// 30k-point RoadNetwork plus its count index is not rebuilt per test.
type accuracyEnv struct {
	data    workload.Dataset
	queries []workload.Queries
	err     error
}

var accuracy = sync.OnceValue(func() *accuracyEnv {
	e := &accuracyEnv{}
	e.data = workload.RoadNetwork(workload.RoadNetworkConfig{N: 30_000, Seed: 20120403})
	idx, err := workload.NewCountIndex(e.data.Points, e.data.Domain, 512)
	if err != nil {
		e.err = err
		return e
	}
	// GenQueries only guarantees a non-zero exact answer; queries with a
	// handful of true points make *relative* error explode under any finite
	// noise (the paper reports medians for the same reason). Mean relative
	// error is only a meaningful regression metric over queries with
	// substantial support, so keep those with at least 100 true points.
	for _, shape := range []workload.QueryShape{{W: 5, H: 5}, {W: 10, H: 10}} {
		qs, err := workload.GenQueries(idx, shape, 80, 20120403+int64(shape.W))
		if err != nil {
			e.err = err
			return e
		}
		kept := workload.Queries{Shape: qs.Shape}
		for i, ans := range qs.Answers {
			if ans >= 100 {
				kept.Rects = append(kept.Rects, qs.Rects[i])
				kept.Answers = append(kept.Answers, ans)
			}
		}
		if len(kept.Rects) < 20 {
			e.err = fmt.Errorf("only %d/%d %v queries have >=100 true points", len(kept.Rects), 80, shape)
			return e
		}
		e.queries = append(e.queries, kept)
	}
	return e
})

// accuracyMeanErr builds one tree on the shared workload and returns its
// mean relative error (in %) over the kept queries.
func accuracyMeanErr(t *testing.T, cfg core.Config) float64 {
	t.Helper()
	e := accuracy()
	if e.err != nil {
		t.Fatal(e.err)
	}
	p, err := core.Build(e.data.Points, e.data.Domain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for i := range e.queries {
		for _, err := range RelativeErrors(p, &e.queries[i]) {
			sum += err
			n++
		}
	}
	return sum / float64(n)
}

// accuracySeeds is the number of independent trees each configuration
// averages over, so a single lucky or unlucky noise draw cannot flip a
// verdict.
const accuracySeeds = 30

// quadOptMeanErr is the 30-seed quad-opt baseline both regressions compare
// against, computed once per process.
func quadOptMeanErr(t *testing.T) float64 {
	v := quadOptOnce()
	if v.err != "" {
		t.Fatal(v.err)
	}
	return v.mean
}

var quadOptOnce = sync.OnceValue(func() (v struct {
	mean float64
	err  string
}) {
	e := accuracy()
	if e.err != nil {
		v.err = e.err.Error()
		return v
	}
	var sum float64
	for seed := int64(1); seed <= accuracySeeds; seed++ {
		p, err := core.Build(e.data.Points, e.data.Domain, core.Config{
			Kind: core.Quadtree, Height: 7, Epsilon: 0.5, Seed: seed,
			Strategy: budget.Geometric{}, PostProcess: true,
		})
		if err != nil {
			v.err = err.Error()
			return v
		}
		var s float64
		var n int
		for i := range e.queries {
			for _, err := range RelativeErrors(p, &e.queries[i]) {
				s += err
				n++
			}
		}
		sum += s / float64(n)
	}
	v.mean = sum / accuracySeeds
	return v
})

// TestQuadOptAccuracyRegression pins the paper's headline behavior so it
// cannot silently regress: quad-opt (geometric level budgets, Section 4.2,
// plus OLS post-processing, Section 5) must stay within an absolute
// accuracy bound AND strictly beat the prior-work baseline (uniform
// budgets, no post-processing) on the same workload.
//
// The pinned numbers come from this harness at the time of writing: over 30
// seeds, quad-opt's mean relative error sat at 8.45% with the baseline at
// 26.10% — a 3.1x gap, matching the shape of Figure 3. Everything here is
// seeded (dataset, queries, noise), so the measurement is reproducible; the
// bound (15%) and the required improvement factor (1.5x) still leave room
// for legitimate numeric churn while catching any real regression (dropping
// either optimization blows straight past them).
func TestQuadOptAccuracyRegression(t *testing.T) {
	const (
		meanErrBound   = 15.0 // percent
		minImprovement = 1.5  // baseline/opt mean-error ratio
	)

	var baseSum float64
	for seed := int64(1); seed <= accuracySeeds; seed++ {
		baseSum += accuracyMeanErr(t, core.Config{
			Kind: core.Quadtree, Height: 7, Epsilon: 0.5, Seed: seed,
			Strategy: budget.Uniform{}, PostProcess: false,
		})
	}
	opt := quadOptMeanErr(t)
	base := baseSum / accuracySeeds
	t.Logf("mean relative error over %d seeds: quad-opt %.2f%%, uniform-no-post %.2f%% (ratio %.2fx)",
		accuracySeeds, opt, base, base/opt)

	if math.IsNaN(opt) || opt > meanErrBound {
		t.Errorf("quad-opt mean relative error %.2f%% exceeds pinned bound %.0f%% — "+
			"the Section 4/5 optimizations have regressed", opt, meanErrBound)
	}
	if !(opt*minImprovement < base) {
		t.Errorf("quad-opt (%.2f%%) does not beat uniform-no-postprocessing (%.2f%%) by %.1fx — "+
			"geometric budgets and/or OLS post-processing stopped helping", opt, base, minImprovement)
	}
}

// TestPrivTreeAccuracyRegression pins the adaptive decomposition's headline
// property on the same skewed workload: at equal ε, PrivTree's mean relative
// error must stay within an absolute bound and be at least as good as
// quad-opt — the paper's best all-round method — because its depth-
// independent budget concentrates the whole count share on one release over
// the adaptive leaf partition instead of splitting it across levels.
//
// Measured at the time of writing (defaults: CountFraction 0.7, θ = 0,
// calibrated λ): over 30 seeds PrivTree sat at ≈4.6% against quad-opt's
// ≈8.5% — a 1.9x gap — and was flat in MaxDepth from 7 through 9. The bound
// (8%) and the as-good-as requirement still leave room for numeric churn
// while catching a real regression in the splitting rule, the calibration,
// or the leaf-only release.
func TestPrivTreeAccuracyRegression(t *testing.T) {
	const meanErrBound = 8.0 // percent

	var privSum float64
	for seed := int64(1); seed <= accuracySeeds; seed++ {
		privSum += accuracyMeanErr(t, core.Config{
			Kind: core.PrivTree, Height: 8, Epsilon: 0.5, Seed: seed,
		})
	}
	priv := privSum / accuracySeeds
	opt := quadOptMeanErr(t)
	t.Logf("mean relative error over %d seeds: privtree %.2f%%, quad-opt %.2f%% (ratio %.2fx)",
		accuracySeeds, priv, opt, opt/priv)

	if math.IsNaN(priv) || priv > meanErrBound {
		t.Errorf("privtree mean relative error %.2f%% exceeds pinned bound %.0f%% — "+
			"the adaptive decomposition has regressed", priv, meanErrBound)
	}
	if !(priv <= opt) {
		t.Errorf("privtree (%.2f%%) is worse than quad-opt (%.2f%%) at equal ε — "+
			"the depth-independent budget advantage is gone", priv, opt)
	}
}
