package eval

import (
	"fmt"
	"time"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/workload"
)

// Figure3Row is one bar group of Figure 3: quadtree optimizations at one
// (ε, query shape) cell. Values are median relative errors in %.
type Figure3Row struct {
	Eps      float64
	Shape    workload.QueryShape
	Baseline float64 // uniform budget, no post-processing
	Geo      float64 // geometric budget (Section 4)
	Post     float64 // uniform budget + OLS (Section 5)
	Opt      float64 // geometric + OLS combined
}

// Figure3 reproduces Figure 3(a-c): the effect of the paper's two
// optimizations on quadtrees of the given height across ε values and the
// four paper query shapes.
func Figure3(env *Env, height int, epss []float64, shapes []workload.QueryShape) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, eps := range epss {
		specs := []RunSpec{
			{"quad-baseline", core.Config{Kind: core.Quadtree, Height: height, Epsilon: eps,
				Strategy: budget.Uniform{}}},
			{"quad-geo", core.Config{Kind: core.Quadtree, Height: height, Epsilon: eps,
				Strategy: budget.Geometric{}}},
			{"quad-post", core.Config{Kind: core.Quadtree, Height: height, Epsilon: eps,
				Strategy: budget.Uniform{}, PostProcess: true}},
			{"quad-opt", core.Config{Kind: core.Quadtree, Height: height, Epsilon: eps,
				Strategy: budget.Geometric{}, PostProcess: true}},
		}
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			row := Figure3Row{Eps: eps, Shape: shape}
			dst := []*float64{&row.Baseline, &row.Geo, &row.Post, &row.Opt}
			for i, spec := range specs {
				v, err := env.medianErrorOver(spec, qs)
				if err != nil {
					return nil, err
				}
				*dst[i] = v
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// KDVariantSpecs returns the six kd-tree family members of Figure 5 at the
// given height, ε and pruning threshold (the paper uses h=8, m=32,
// εcount = 0.7ε). All private variants use geometric budgets and OLS
// ("all subsequent results are presented with both optimizations").
func KDVariantSpecs(height int, eps, pruneAt float64) []RunSpec {
	common := func(kind core.Kind) core.Config {
		return core.Config{
			Kind: kind, Height: height, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true,
			PruneThreshold: pruneAt,
		}
	}
	pure := core.Config{Kind: core.KD, Height: height, NonPrivate: true}
	tru := common(core.KD)
	tru.TrueMedians = true
	return []RunSpec{
		{"kd-pure", pure},
		{"kd-true", tru},
		{"kd-standard", common(core.KD)},
		{"kd-hybrid", common(core.Hybrid)},
		{"kd-cell", common(core.KDCell)},
		{"kd-noisymean", common(core.KDNoisyMean)},
	}
}

// Figure5Row is one (ε, shape) cell of Figure 5: median relative error (%)
// for each kd-tree variant, keyed by variant name.
type Figure5Row struct {
	Eps    float64
	Shape  workload.QueryShape
	Errors map[string]float64
}

// Figure5 reproduces Figure 5(a-c): the kd-tree family comparison at h=8
// with pruning threshold 32.
func Figure5(env *Env, height int, epss []float64, shapes []workload.QueryShape) ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, eps := range epss {
		specs := KDVariantSpecs(height, eps, 32)
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			row := Figure5Row{Eps: eps, Shape: shape, Errors: map[string]float64{}}
			for _, spec := range specs {
				v, err := env.medianErrorOver(spec, qs)
				if err != nil {
					return nil, err
				}
				row.Errors[spec.Name] = v
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure6Methods lists the best-of-family methods Figure 6 sweeps over
// heights: optimized quadtree, hybrid kd-tree, cell kd-tree and the Hilbert
// R-tree.
func Figure6Methods(height int, eps float64) []RunSpec {
	common := func(kind core.Kind) core.Config {
		return core.Config{
			Kind: kind, Height: height, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true,
			PruneThreshold: 32,
		}
	}
	quad := common(core.Quadtree)
	return []RunSpec{
		{"quad-opt", quad},
		{"kd-hybrid", common(core.Hybrid)},
		{"kd-cell", common(core.KDCell)},
		{"hilbert-r", common(core.HilbertR)},
	}
}

// Figure6Row is one (height, shape) cell of Figure 6.
type Figure6Row struct {
	Height int
	Shape  workload.QueryShape
	Errors map[string]float64
}

// Figure6 reproduces Figure 6(a-c): query accuracy versus tree height at
// fixed ε for the representative methods.
func Figure6(env *Env, heights []int, eps float64, shapes []workload.QueryShape) ([]Figure6Row, error) {
	var rows []Figure6Row
	for _, h := range heights {
		specs := Figure6Methods(h, eps)
		for _, shape := range shapes {
			qs, err := env.Queries(shape)
			if err != nil {
				return nil, err
			}
			row := Figure6Row{Height: h, Shape: shape, Errors: map[string]float64{}}
			for _, spec := range specs {
				v, err := env.medianErrorOver(spec, qs)
				if err != nil {
					return nil, err
				}
				row.Errors[spec.Name] = v
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure7aRow is one bar of Figure 7(a): construction time per method.
type Figure7aRow struct {
	Method string
	Build  time.Duration
	Nodes  int
}

// Figure7a reproduces Figure 7(a): the time to build each representative
// decomposition. kdHeight is the kd-family height (paper: 8) and quadHeight
// the quadtree height (paper: 10).
func Figure7a(env *Env, kdHeight, quadHeight int, eps float64) ([]Figure7aRow, error) {
	specs := []RunSpec{
		{"kd-hybrid", core.Config{Kind: core.Hybrid, Height: kdHeight, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true}},
		{"kd-cell", core.Config{Kind: core.KDCell, Height: kdHeight, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true}},
		{"quadtree", core.Config{Kind: core.Quadtree, Height: quadHeight, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true}},
		{"hilbert-r", core.Config{Kind: core.HilbertR, Height: kdHeight, Epsilon: eps,
			Strategy: budget.Geometric{}, PostProcess: true}},
	}
	var rows []Figure7aRow
	for _, spec := range specs {
		cfg := spec.Cfg
		cfg.Seed = env.Scale.Seed
		start := time.Now()
		p, err := core.Build(env.Data.Points, env.Data.Domain, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rows = append(rows, Figure7aRow{
			Method: spec.Name,
			Build:  time.Since(start),
			Nodes:  p.Len(),
		})
	}
	return rows, nil
}

// GridBaselineRow compares the Section 1 flat-grid baseline [6] against the
// optimized quadtree on one query shape.
type GridBaselineRow struct {
	Shape    workload.QueryShape
	GridErr  float64 // median relative error (%), fine grid
	QuadErr  float64 // median relative error (%), quad-opt
	GridDims string
}

// GridBaseline quantifies the paper's motivating observation: a flat fine
// grid's noise accumulates over large queries while the hierarchical PSD
// stays accurate. gridSide is the per-axis resolution of the flat grid.
func GridBaseline(env *Env, gridSide, quadHeight int, eps float64, shapes []workload.QueryShape) ([]GridBaselineRow, error) {
	gridSpec := core.Config{Kind: core.Quadtree, Height: quadHeight, Epsilon: eps,
		Strategy: budget.Geometric{}, PostProcess: true, Seed: env.Scale.Seed}
	quad, err := core.Build(env.Data.Points, env.Data.Domain, gridSpec)
	if err != nil {
		return nil, err
	}
	flat, err := buildFlatGrid(env, gridSide, eps)
	if err != nil {
		return nil, err
	}
	var rows []GridBaselineRow
	for _, shape := range shapes {
		qs, err := env.Queries(shape)
		if err != nil {
			return nil, err
		}
		var gridErrs, quadErrs []float64
		for i, q := range qs.Rects {
			truth := qs.Answers[i]
			gridErrs = append(gridErrs, 100*abs(flat.Query(q)-truth)/truth)
			quadErrs = append(quadErrs, 100*abs(quad.Query(q)-truth)/truth)
		}
		rows = append(rows, GridBaselineRow{
			Shape:    shape,
			GridErr:  workload.Median(gridErrs),
			QuadErr:  workload.Median(quadErrs),
			GridDims: fmt.Sprintf("%dx%d", gridSide, gridSide),
		})
	}
	return rows, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
