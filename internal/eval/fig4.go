package eval

import (
	"fmt"
	"time"

	"psd/internal/dp"
	"psd/internal/grid"
	"psd/internal/median"
	"psd/internal/rng"
)

func buildFlatGrid(env *Env, side int, eps float64) (*grid.Grid, error) {
	noise := dp.NewLaplace(rng.New(env.Scale.Seed ^ 0x67726964))
	return grid.Build(env.Data.Points, env.Data.Domain, side, side, eps, noise)
}

// Figure4Row is one (method, depth) cell of Figure 4: the average
// normalized rank error (in %) and the total time spent by one private
// median method at one depth of a binary tree built over 2^20 uniform
// values in [0, 2^26].
type Figure4Row struct {
	Method string
	Depth  int
	// RankErr is the average normalized rank error in % (100 = median fell
	// outside the data range).
	RankErr float64
	// Time is the total time spent computing this level's medians.
	Time time.Duration
}

// Figure4Config parameterizes the median study.
type Figure4Config struct {
	// Values is the input size (paper: 2^20).
	Values int
	// Domain is the value domain [0, Domain] (paper: 2^26).
	Domain float64
	// Depths is the number of tree levels (paper: 10).
	Depths int
	// Eps is the per-level budget (paper: 0.01).
	Eps float64
	// Delta is the smooth-sensitivity δ (paper: 1e-4).
	Delta float64
	// SampleRate is the EMs/SSs sampling rate (paper: 1%).
	SampleRate float64
	// CellWidth is the cell method's fixed cell length (paper: 2^10).
	CellWidth float64
	Seed      int64
}

// PaperFigure4 is the configuration of Section 8.2's median study.
var PaperFigure4 = Figure4Config{
	Values:     1 << 20,
	Domain:     1 << 26,
	Depths:     10,
	Eps:        0.01,
	Delta:      1e-4,
	SampleRate: 0.01,
	CellWidth:  1 << 10,
	Seed:       41,
}

// Figure4Methods returns the six methods the figure compares, keyed by the
// paper's labels.
func Figure4Methods(cfg Figure4Config) ([]string, map[string]median.Finder) {
	src := rng.New(cfg.Seed)
	m := map[string]median.Finder{
		"EM":   &median.EM{Src: src.Split()},
		"SS":   &median.SS{Src: src.Split(), Delta: cfg.Delta},
		"EMs":  &median.Sampled{Inner: &median.EM{Src: src.Split()}, Src: src.Split(), Rate: cfg.SampleRate},
		"SSs":  &median.Sampled{Inner: &median.SS{Src: src.Split(), Delta: cfg.Delta}, Src: src.Split(), Rate: cfg.SampleRate},
		"NM":   &median.NM{Src: src.Split()},
		"cell": &median.Cell{Src: src.Split(), Cells: int(cfg.Domain / cfg.CellWidth)},
	}
	order := []string{"EM", "SS", "EMs", "SSs", "NM", "cell"}
	return order, m
}

// Figure4 reproduces Figure 4(a) and (b): for each private median method, a
// binary tree is built over uniform one-dimensional data with the splits
// found by the mechanism itself, recording per-depth average rank error and
// time. Depth 0 is the root (the full data), as in the paper's x-axis.
func Figure4(cfg Figure4Config) ([]Figure4Row, error) {
	if cfg.Values <= 0 || cfg.Depths <= 0 || cfg.Domain <= 0 {
		return nil, fmt.Errorf("eval: invalid Figure 4 config %+v", cfg)
	}
	src := rng.New(cfg.Seed ^ 0x66696734)
	base := make([]float64, cfg.Values)
	for i := range base {
		base[i] = src.UniformIn(0, cfg.Domain)
	}
	order, methods := Figure4Methods(cfg)

	var rows []Figure4Row
	for _, name := range order {
		finder := methods[name]
		values := make([]float64, len(base))
		copy(values, base)
		// Active segments of the binary tree at the current depth.
		type segment struct {
			vals   []float64
			lo, hi float64
		}
		segs := []segment{{values, 0, cfg.Domain}}
		for depth := 0; depth < cfg.Depths; depth++ {
			var errSum float64
			var evals int
			start := time.Now()
			var next []segment
			for _, s := range segs {
				if s.hi <= s.lo {
					// A previous private median collapsed this range (it
					// landed on a boundary). The subtree is degenerate:
					// carry it down without further splits or evaluation.
					next = append(next, s, segment{nil, s.lo, s.hi})
					continue
				}
				m, err := finder.Median(s.vals, s.lo, s.hi, cfg.Eps)
				if err != nil {
					return nil, fmt.Errorf("%s depth %d: %w", name, depth, err)
				}
				if len(s.vals) > 0 {
					errSum += median.RankError(s.vals, m)
					evals++
				}
				mid := partition(s.vals, m)
				next = append(next,
					segment{s.vals[:mid], s.lo, m},
					segment{s.vals[mid:], m, s.hi})
			}
			elapsed := time.Since(start)
			avg := 0.0
			if evals > 0 {
				avg = 100 * errSum / float64(evals)
			}
			rows = append(rows, Figure4Row{
				Method:  name,
				Depth:   depth,
				RankErr: avg,
				Time:    elapsed,
			})
			segs = next
		}
	}
	return rows, nil
}

// partition reorders vals so entries < split come first, returning their
// count.
func partition(vals []float64, split float64) int {
	i, j := 0, len(vals)
	for i < j {
		if vals[i] < split {
			i++
			continue
		}
		j--
		vals[i], vals[j] = vals[j], vals[i]
	}
	return i
}
