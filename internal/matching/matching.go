// Package matching implements the private record matching application of
// Section 8.3, following Inan et al. [12]: party A holds a private point
// set and publishes a differentially private spatial decomposition of it;
// party B uses the release to decide where expensive secure multiparty
// computation (SMC) is worth running. As in the paper's configuration, the
// blocking trees carry leaf-only counts ("all count budget is allocated to
// leaves and thus post-processing does not apply").
//
// B assigns its own records (which it knows exactly) to A's released
// regions. For every region with a positive released count, SMC compares
// B's local records against A's encrypted records for that region — padded
// to the released noisy count, which is what keeps A's true cardinalities
// private and why noise costs work. The SMC cost is therefore
//
//	Σ_regions  max(0, round(noisyA)) · |B ∩ region|
//
// and the quality metric is the reduction ratio 1 − cost/(|A|·|B|) — the
// fraction of the no-elimination baseline saved; bigger is better
// (Figure 7(b)). Balanced private splits (kd with good medians) localize
// A's mass into small per-region counts and win; a data-independent
// quadtree wastes budget on empty cells and concentrates hotspots into few
// heavy cells; noisy-mean splits unbalance the tree.
package matching

import (
	"fmt"
	"math"

	"psd/internal/budget"
	"psd/internal/core"
	"psd/internal/geom"
)

// Method selects the blocking structure, mirroring the Figure 7(b) lines.
type Method int

// The three blocking structures Figure 7(b) compares.
const (
	// QuadBaseline is a quadtree with leaf-only counts.
	QuadBaseline Method = iota
	// KDNoisyMean is the original scheme of [12]: noisy-mean splits.
	KDNoisyMean
	// KDStandard is the paper's improvement: exponential-mechanism medians.
	KDStandard
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case QuadBaseline:
		return "quad-baseline"
	case KDNoisyMean:
		return "kd-noisymean"
	case KDStandard:
		return "kd-standard"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config parameterizes a matching run.
type Config struct {
	// Method selects the blocking tree.
	Method Method
	// Height is the tree height (default 5: 1024 regions).
	Height int
	// Epsilon is party A's privacy budget for its release.
	Epsilon float64
	// Seed fixes randomness.
	Seed int64
}

// Result reports one matching run.
type Result struct {
	Method Method
	// ReductionRatio is 1 − (SMC pairs after filtering)/(|A|·|B|).
	ReductionRatio float64
	// Recall is the fraction of truly co-located cross pairs that SMC still
	// compares; a region whose padded count truncates to zero loses its
	// pairs.
	Recall float64
	// Pairs is the number of padded comparisons SMC must perform.
	Pairs float64
	// Regions is the number of blocking regions A released.
	Regions int
}

// Run builds party A's private tree and computes the SMC cost of matching
// party B against it. Both point sets must lie in domain.
func Run(partyA, partyB []geom.Point, domain geom.Rect, cfg Config) (Result, error) {
	if cfg.Height == 0 {
		cfg.Height = 5
	}
	if len(partyA) == 0 || len(partyB) == 0 {
		return Result{}, fmt.Errorf("matching: empty party (|A|=%d, |B|=%d)", len(partyA), len(partyB))
	}
	tc := core.Config{
		Height:   cfg.Height,
		Epsilon:  cfg.Epsilon,
		Seed:     cfg.Seed ^ 0x626c6f636b,
		Strategy: budget.LeafOnly{},
	}
	switch cfg.Method {
	case QuadBaseline:
		tc.Kind = core.Quadtree
	case KDNoisyMean:
		tc.Kind = core.KDNoisyMean
	case KDStandard:
		tc.Kind = core.KD
	default:
		return Result{}, fmt.Errorf("matching: unknown method %v", cfg.Method)
	}
	p, err := core.Build(partyA, domain, tc)
	if err != nil {
		return Result{}, err
	}
	regions, noisy := p.LeafRegions()
	trueA := trueLeafCounts(p)

	// B assigns its own records locally — the regions are public once
	// released, so this costs no budget. Partition-tree regions tile the
	// domain; locate each point through the released tree geometry.
	bCounts := assign(partyB, regions)

	var pairs, truePairs, keptTruePairs float64
	for i := range regions {
		padded := math.Max(0, math.Round(noisy[i]))
		nb := float64(bCounts[i])
		pairs += padded * nb
		tp := trueA[i] * nb
		truePairs += tp
		if padded > 0 {
			keptTruePairs += tp
		}
	}
	total := float64(len(partyA)) * float64(len(partyB))
	recall := 1.0
	if truePairs > 0 {
		recall = keptTruePairs / truePairs
	}
	return Result{
		Method:         cfg.Method,
		ReductionRatio: 1 - pairs/total,
		Recall:         recall,
		Pairs:          pairs,
		Regions:        len(regions),
	}, nil
}

// assign counts party B's records per region. Regions from a partition
// tree tile the domain, so each point lands in exactly one; points on
// shared boundaries go to the first region containing them.
func assign(pts []geom.Point, regions []geom.Rect) []int {
	counts := make([]int, len(regions))
	for _, p := range pts {
		for i, r := range regions {
			if r.Contains(p) {
				counts[i]++
				break
			}
		}
	}
	return counts
}

// trueLeafCounts reads the exact per-leaf populations off the arena (used
// only to compute recall — it is never part of the release).
func trueLeafCounts(p *core.PSD) []float64 {
	ar := p.Arena()
	var out []float64
	var rec func(i int)
	rec = func(i int) {
		n := &ar.Nodes[i]
		if ar.IsLeaf(i) || n.Pruned {
			out = append(out, n.True)
			return
		}
		cs := ar.ChildStart(i)
		for j := 0; j < 4; j++ {
			rec(cs + j)
		}
	}
	rec(0)
	return out
}
