package matching

import (
	"testing"

	"psd/internal/geom"
	"psd/internal/rng"
)

// parties generates two point sets with overlapping hotspots: both cluster
// in a handful of cities, but not the same ones.
func parties(nA, nB int, dom geom.Rect, seed int64) (a, b []geom.Point) {
	src := rng.New(seed)
	cities := make([]geom.Point, 8)
	for i := range cities {
		cities[i] = geom.Point{
			X: src.UniformIn(dom.Lo.X, dom.Hi.X),
			Y: src.UniformIn(dom.Lo.Y, dom.Hi.Y),
		}
	}
	// Tight hotspots (σ = 1% of the domain): the skew regime of real
	// address data, where a fixed quadtree grid piles whole cities into
	// single heavy cells while adaptive splits subdivide them.
	gen := func(n int, cityLo, cityHi int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			c := cities[cityLo+src.Intn(cityHi-cityLo)]
			pts[i] = geom.Point{
				X: clamp(c.X+src.Gaussian(0, dom.Width()/100), dom.Lo.X, dom.Hi.X-1e-9),
				Y: clamp(c.Y+src.Gaussian(0, dom.Height()/100), dom.Lo.Y, dom.Hi.Y-1e-9),
			}
		}
		return pts
	}
	// A uses cities 0-5, B uses 3-8: partial overlap.
	return gen(nA, 0, 6), gen(nB, 3, 8)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestRunValidation(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	a, b := parties(100, 100, dom, 1)
	if _, err := Run(nil, b, dom, Config{Epsilon: 0.5}); err == nil {
		t.Error("empty party A should error")
	}
	if _, err := Run(a, nil, dom, Config{Epsilon: 0.5}); err == nil {
		t.Error("empty party B should error")
	}
	if _, err := Run(a, b, dom, Config{Epsilon: 0.5, Method: Method(9)}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestReductionRatioBasics(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	a, b := parties(3000, 3000, dom, 2)
	for _, m := range []Method{QuadBaseline, KDNoisyMean, KDStandard} {
		res, err := Run(a, b, dom, Config{Method: m, Epsilon: 0.5, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.ReductionRatio <= 0 || res.ReductionRatio > 1 {
			t.Errorf("%v: reduction ratio %v outside (0,1]", m, res.ReductionRatio)
		}
		if res.Recall < 0 || res.Recall > 1 {
			t.Errorf("%v: recall %v outside [0,1]", m, res.Recall)
		}
		if res.Pairs < 0 {
			t.Errorf("%v: negative pairs %v", m, res.Pairs)
		}
		if res.Regions == 0 {
			t.Errorf("%v: no blocking regions", m)
		}
	}
}

// More budget means less padding noise, so the filter eliminates more
// comparisons — the x-axis trend of Figure 7(b).
func TestReductionRatioImprovesWithEpsilon(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	a, b := parties(12000, 12000, dom, 3)
	avg := func(eps float64) float64 {
		var sum float64
		const trials = 5
		for s := int64(0); s < trials; s++ {
			res, err := Run(a, b, dom, Config{Method: KDStandard, Epsilon: eps, Seed: 100 + s})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.ReductionRatio
		}
		return sum / trials
	}
	lo, hi := avg(0.05), avg(0.5)
	if hi <= lo {
		t.Errorf("reduction ratio should improve with eps: eps=0.05 %v, eps=0.5 %v", lo, hi)
	}
}

// The paper's Figure 7(b) headline: kd-standard beats both prior methods.
func TestKDStandardWins(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	a, b := parties(20000, 20000, dom, 4)
	avg := func(m Method) float64 {
		var sum float64
		const trials = 5
		for s := int64(0); s < trials; s++ {
			res, err := Run(a, b, dom, Config{Method: m, Epsilon: 0.3, Seed: 200 + s})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.ReductionRatio
		}
		return sum / trials
	}
	std := avg(KDStandard)
	nm := avg(KDNoisyMean)
	quad := avg(QuadBaseline)
	if std <= nm {
		t.Errorf("kd-standard (%v) should beat kd-noisymean (%v)", std, nm)
	}
	if std <= quad {
		t.Errorf("kd-standard (%v) should beat quad-baseline (%v)", std, quad)
	}
}

func TestHighEpsilonHighRecall(t *testing.T) {
	dom := geom.NewRect(0, 0, 100, 100)
	a, b := parties(12000, 12000, dom, 5)
	res, err := Run(a, b, dom, Config{Method: KDStandard, Epsilon: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 0.95 {
		t.Errorf("recall at eps=5 = %v, want > 0.95", res.Recall)
	}
}

func TestMethodString(t *testing.T) {
	if QuadBaseline.String() != "quad-baseline" ||
		KDNoisyMean.String() != "kd-noisymean" ||
		KDStandard.String() != "kd-standard" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still format")
	}
}
