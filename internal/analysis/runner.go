package analysis

import (
	"fmt"
	"io"
)

// RunStandalone loads the packages matching patterns under dir, applies every
// analyzer, and prints findings to w in file:line:col form. It returns the
// number of findings (0 means a clean run).
func RunStandalone(dir string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPackages(dir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags := RunAnalyzers(pkg, analyzers)
		for _, d := range diags {
			fmt.Fprintf(w, "%s\n", d.String())
		}
		total += len(diags)
	}
	return total, nil
}
