package ingest

import "os"

// fs.go is the designated filesystem seam: raw renames are its job.
func seamRename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}
