package ingest

import "os"

func publish(tmp, final string) error {
	return os.Rename(tmp, final) // want `bypasses the fsync-before-rename discipline`
}

func scribble(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile`
}

func open(path string) (*os.File, error) {
	return os.Create(path) // want `os\.Create`
}

func journalRotate(tmp, final string) error {
	//lint:allow fsyncdiscipline -- segment already fsynced; this rename is the WAL rotation commit point
	return os.Rename(tmp, final)
}

func read(path string) ([]byte, error) {
	return os.ReadFile(path) // reads are not durability hazards
}
