// Package core is OUT of fsyncdiscipline's scope: it produces bytes in
// memory; persistence is its callers' problem.
package core

import "os"

func scratch(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
