package main

import "os"

// Committed BENCH_*.json reports are published artifacts: a torn write is a
// corrupt benchmark baseline.
func writeReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile`
}

func main() {}
