// Package fsyncdiscipline enforces the durable-write discipline: in the
// packages that publish artifacts or maintain crash-safe state, a file that
// matters must never be produced by a bare os.Create / os.WriteFile /
// os.Rename. A crash (or a watch-dir rescan) mid-write would then observe a
// torn file. Durable bytes flow through psd/internal/atomicfile (temp file →
// fsync → rename → dir fsync) or through the WAL's segment-rotation path,
// both of which were built and fault-tested for exactly this.
//
// The designated seams themselves — atomicfile, the ingest tier's osFS
// filesystem seam, and the fault-injection shim — are allowlisted; everything
// else in scope must either use them or justify the exception with
// //lint:allow fsyncdiscipline -- <why>.
package fsyncdiscipline

import (
	"go/ast"
	"strings"

	"psd/internal/analysis"
)

// scopePrefixes are package paths (exact or prefix) whose writes are presumed
// durable: the ingest tier, the serving tier, the privacy ledger, and every
// command that publishes artifacts (releases, datasets, BENCH reports).
var scopePrefixes = []string{
	"psd/internal/ingest",
	"psd/internal/serve",
	"psd/internal/dp",
	"psd/internal/atomicfile",
	"psd/cmd/",
}

// allowFiles maps package path -> file basenames that ARE the durable-write
// seam and so legitimately touch the raw filesystem.
var allowFiles = map[string]map[string]bool{
	"psd/internal/atomicfile":    {"atomicfile.go": true},
	"psd/internal/ingest":        {"fs.go": true},
	"psd/internal/serve/faultfs": {"faultfs.go": true},
}

var bannedOSFuncs = map[string]bool{"Rename": true, "Create": true, "WriteFile": true}

var Analyzer = &analysis.Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "durable artifacts and state must be written via psd/internal/atomicfile or the WAL rotation path, never bare os.Create/os.WriteFile/os.Rename",
	Run:  run,
}

func inScope(pkg string) bool {
	for _, p := range scopePrefixes {
		if pkg == strings.TrimSuffix(p, "/") || strings.HasPrefix(pkg, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	allowed := allowFiles[pass.PkgPath]
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if allowed[pass.Filename(f.Pos())] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for fn := range bannedOSFuncs {
				if pass.IsPkgFunc(call, "os", fn) {
					pass.Reportf(call.Pos(), "os.%s in %s bypasses the fsync-before-rename discipline; write durable files through psd/internal/atomicfile (or the WAL rotation seam), or justify with //lint:allow fsyncdiscipline -- <why>", fn, pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}
