package fsyncdiscipline_test

import (
	"testing"

	"psd/internal/analysis/analysistest"
	"psd/internal/analysis/fsyncdiscipline"
)

func TestIngestScope(t *testing.T) {
	analysistest.Run(t, fsyncdiscipline.Analyzer, "psd/internal/ingest")
}

func TestCmdScope(t *testing.T) {
	analysistest.Run(t, fsyncdiscipline.Analyzer, "psd/cmd/psdbench")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, fsyncdiscipline.Analyzer, "psd/internal/core")
}
