package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// This file implements the tool side of the `go vet -vettool` protocol, the
// same contract golang.org/x/tools/go/analysis/unitchecker speaks:
//
//   - `tool -V=full` prints a version line ending in buildID=<hash of the
//     executable>; cmd/go folds it into its action cache key, so a rebuilt
//     psdlint invalidates cached vet results.
//   - `tool -flags` prints a JSON array describing the tool's flags; cmd/go
//     uses it to validate flags the user passes to `go vet`.
//   - `tool [flags] <dir>/vet.cfg` analyzes one package unit described by the
//     JSON config, writes an (empty — psdlint analyzers are fact-free) facts
//     file to VetxOutput, prints diagnostics to stderr, and exits 2 if any.

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	ImportMap  map[string]string
	PackageFile map[string]string
	Standard   map[string]bool
	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// IsVetInvocation reports whether argv looks like a cmd/go vet-protocol
// invocation rather than a standalone run.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// VetMain services one cmd/go vet-protocol invocation and exits.
func VetMain(progname string, args []string, analyzers []*Analyzer) {
	for _, a := range args {
		switch {
		case a == "-V=full":
			printVersion(progname)
			os.Exit(0)
		case a == "-flags":
			printFlags(analyzers)
			os.Exit(0)
		}
	}
	cfgFile := args[len(args)-1]
	if !strings.HasSuffix(cfgFile, ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected vet config file as last argument; invoke via `go vet -vettool=%s` or run standalone with package patterns\n", progname, progname)
		os.Exit(1)
	}
	diags, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emits the `-V=full` line cmd/go parses for its cache key. The
// buildID is a hash of the tool's own executable: analyzer changes rebuild
// the binary and therefore bust go vet's cached results.
func printVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes the single package unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		// psdlint analyzers carry no cross-package facts; the file must
		// still exist for cmd/go to cache the vet action.
		return os.WriteFile(cfg.VetxOutput, []byte("psdlint: no facts\n"), 0o666)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx()
			}
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	tpkg, info, err := checkFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx()
		}
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	var diags []Diagnostic
	if !cfg.VetxOnly {
		diags = RunAnalyzers(&Package{
			PkgPath:   cfg.ImportPath,
			Dir:       cfg.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		}, analyzers)
	}
	if err := writeVetx(); err != nil {
		return nil, err
	}
	return diags, nil
}
