// Package ctxpoll structurally enforces the serving tier's deadline contract
// (the cancellation design in internal/core/cancel.go): a traversal that can
// visit an unbounded number of slab nodes must poll its cancellation token at
// bounded checkpoints, or a replica cannot abandon a request whose deadline
// fired and ties up a core a within-deadline request could have used. Timeout
// tests catch this only probabilistically; the structure is checkable.
//
// In psd/internal/core, any function that is handed a cancellation token —
// a *cancelToken parameter, or a parameter whose struct carries one (the
// batch scratch) — must consume it: call tick/poll on it, or pass it (or its
// carrier) onward to a token-aware callee. Additionally, worklist-style
// loops (`for len(stk) > 0`, `for { ... }`) inside such functions must
// tick-or-delegate inside the loop body itself, because one such loop is an
// entire traversal. Exported *Ctx entry points must touch their context
// (ctx.Err/ctx.Done or forwarding). Functions whose polling budget is
// pre-paid by their caller document that with //lint:allow ctxpoll -- <why>.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"psd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "token-carrying traversal functions in internal/core must poll the cancellation token (tick/poll) or delegate to a token-aware callee; worklist loops must poll inside the loop",
	Run:  run,
}

const scopePkg = "psd/internal/core"

func run(pass *analysis.Pass) error {
	if pass.PkgPath != scopePkg {
		return nil
	}
	tokObj := pass.Pkg.Scope().Lookup("cancelToken")
	var tokType types.Type
	if tn, ok := tokObj.(*types.TypeName); ok {
		tokType = tn.Type()
	}

	c := &checker{pass: pass, tok: tokType}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	tok  types.Type
}

// isToken reports whether t is *cancelToken (or cancelToken).
func (c *checker) isToken(t types.Type) bool {
	if c.tok == nil || t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, c.tok)
}

// isCarrier reports whether t is tokenish: the token itself, or a struct
// (possibly behind a pointer) with a direct field of token type.
func (c *checker) isCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if c.isToken(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if c.isToken(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	// Methods of the token itself ARE the polling mechanism.
	if fd.Recv != nil && len(fd.Recv.List) == 1 && c.isToken(c.pass.TypeOf(fd.Recv.List[0].Type)) {
		return
	}

	carries := false
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, p := range fl.List {
			if c.isCarrier(c.pass.TypeOf(p.Type)) {
				carries = true
			}
		}
	}

	if carries {
		c.checkTokenFunc(fd)
	}
	if fd.Name.IsExported() {
		c.checkCtxEntry(fd)
	}
}

// checkTokenFunc enforces the consume rules on a token-carrying function.
func (c *checker) checkTokenFunc(fd *ast.FuncDecl) {
	hasLoop := false
	walkSameFunc(fd.Body, func(n ast.Node) {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		}
	})
	if !hasLoop {
		return
	}
	if !c.consumes(fd.Body) {
		c.pass.Reportf(fd.Pos(), "%s carries a cancellation token through a loop but never polls it (tick/poll) nor passes it to a callee; a traversal here can overrun its deadline by unbounded work (cancel.go contract) — poll it, or document the pre-paid budget with //lint:allow ctxpoll -- <why>", fd.Name.Name)
		return
	}
	// Worklist loops are whole traversals: the poll must be inside.
	walkSameFunc(fd.Body, func(n ast.Node) {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return
		}
		worklist := fs.Init == nil && fs.Post == nil // `for cond {}` or `for {}`
		if !worklist {
			return
		}
		if !c.consumes(fs.Body) {
			c.pass.Reportf(fs.Pos(), "worklist loop in token-carrying %s never polls the cancellation token inside the loop; each iteration must stay within the bounded-checkpoint contract (cancel.go)", fd.Name.Name)
		}
	})
}

// consumes reports whether body contains a tick/poll call on the token or a
// call receiving a tokenish value (argument or method receiver), ignoring
// nested function literals.
func (c *checker) consumes(body ast.Node) bool {
	found := false
	walkSameFunc(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "tick" || sel.Sel.Name == "poll") && c.isToken(c.pass.TypeOf(sel.X)) {
				found = true
				return
			}
			if c.isCarrier(c.pass.TypeOf(sel.X)) {
				found = true
				return
			}
		}
		for _, arg := range call.Args {
			if c.isCarrier(c.pass.TypeOf(arg)) {
				found = true
				return
			}
		}
	})
	return found
}

// checkCtxEntry: an exported …Ctx entry point taking a context must consult
// it — ctx.Err()/ctx.Done(), or forwarding ctx to a callee.
func (c *checker) checkCtxEntry(fd *ast.FuncDecl) {
	name := fd.Name.Name
	if len(name) < 3 || name[len(name)-3:] != "Ctx" {
		return
	}
	var ctxObj types.Object
	for _, p := range fd.Type.Params.List {
		t := c.pass.TypeOf(p.Type)
		if t != nil && t.String() == "context.Context" && len(p.Names) > 0 {
			ctxObj = c.pass.ObjectOf(p.Names[0])
		}
	}
	if ctxObj == nil {
		return
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.ObjectOf(id) == ctxObj {
			used = true
		}
		return !used
	})
	if !used {
		c.pass.Reportf(fd.Pos(), "exported %s accepts a context it never consults; the deadline contract requires checking ctx or threading it into the traversal", name)
	}
}

// walkSameFunc visits body without descending into nested function literals,
// which are analyzed as their own scopes.
func walkSameFunc(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
