package ctxpoll_test

import (
	"testing"

	"psd/internal/analysis/analysistest"
	"psd/internal/analysis/ctxpoll"
)

func TestCoreScope(t *testing.T) {
	analysistest.Run(t, ctxpoll.Analyzer, "psd/internal/core")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, ctxpoll.Analyzer, "psd/internal/tree")
}
