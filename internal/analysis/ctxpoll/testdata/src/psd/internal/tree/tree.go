package tree

// Outside psd/internal/core the cancel.go contract does not apply: an
// identically-shaped token and loop draw no findings here.
type cancelToken struct{ fired bool }

func (t *cancelToken) poll() bool { return t.fired }

func unpolledWalk(tok *cancelToken, stk []int) {
	for len(stk) > 0 {
		stk = stk[:len(stk)-1]
	}
}
