package core

import "context"

// cancelToken mirrors the real core token: traversals pay for node visits
// with tick() and poll() at bounded checkpoints.
type cancelToken struct {
	remain int
	fired  bool
}

func (t *cancelToken) tick(n int) bool { t.remain -= n; return t.fired }
func (t *cancelToken) poll() bool      { return t.fired }

// batchScratch carries a token, so anything handed the scratch is handed
// the cancellation obligation too.
type batchScratch struct {
	tok   *cancelToken
	stack []int
}

func goodWorklist(tok *cancelToken, roots []int) {
	stk := append([]int(nil), roots...)
	for len(stk) > 0 {
		stk = stk[:len(stk)-1]
		if tok.tick(1) {
			return
		}
	}
}

func badRange(tok *cancelToken, xs []int) int { // want `badRange carries a cancellation token through a loop but never polls it`
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func badWorklist(tok *cancelToken, roots []int) {
	tok.poll() // a poll before the loop does not bound the loop itself
	stk := roots
	for len(stk) > 0 { // want `worklist loop in token-carrying badWorklist never polls the cancellation token inside the loop`
		stk = stk[:len(stk)-1]
	}
}

func delegates(tok *cancelToken, roots []int) {
	stk := roots
	for len(stk) > 0 {
		stk = stk[:len(stk)-1]
		visit(tok, stk)
	}
}

// visit is loop-free: the obligation stays with its looping caller.
func visit(tok *cancelToken, stk []int) {
	tok.poll()
}

func carrierWalk(s *batchScratch) {
	for len(s.stack) > 0 {
		s.stack = s.stack[:len(s.stack)-1]
		if s.tok.tick(1) {
			return
		}
	}
}

func (s *batchScratch) drain() {
	for len(s.stack) > 0 {
		s.stack = s.stack[:len(s.stack)-1]
		s.tok.tick(1)
	}
}

func (s *batchScratch) badDrain() { // want `badDrain carries a cancellation token through a loop but never polls it`
	for len(s.stack) > 0 {
		s.stack = s.stack[:len(s.stack)-1]
	}
}

//lint:allow ctxpoll -- visits are pre-paid by the caller's bulk tick
func prepaid(tok *cancelToken, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func BadCtx(ctx context.Context, xs []int) int { // want `exported BadCtx accepts a context it never consults`
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func GoodCtx(ctx context.Context, xs []int) error {
	for range xs {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
