// Package determinism enforces the repository's central contract: a released
// decomposition is a pure function of (points, seed, ε-budget). That purity
// is what makes parallel and sequential builds byte-identical per seed, what
// `psdingest verify`'s three-way bit-compare audits, and what the fleet's
// canary bit-compare rollout gate assumes. It holds only if no ambient
// randomness, no wall clock, and no nondeterministic iteration order can
// reach a build or release path.
//
// In the build/release packages (internal/core, dp, tree, grid, ols, median,
// rng) this analyzer forbids:
//
//   - importing math/rand, math/rand/v2 or crypto/rand — all randomness must
//     flow through psd/internal/rng's counter-based per-node streams
//     (rng.At), which are replayable from the seed;
//   - calling time.Now / time.Since / time.Until — wall clock readings make
//     byte-identical rebuilds impossible;
//   - ranging over a map — Go randomizes map iteration order, so any map
//     walk that feeds release output (node ordering, serialized fields,
//     accumulated sums) is a nondeterminism hole. Iterate a sorted key slice
//     instead, or justify the exception with //lint:allow.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"psd/internal/analysis"
)

// scope is the set of packages whose code can feed release bytes.
var scope = map[string]bool{
	"psd/internal/core":   true,
	"psd/internal/dp":     true,
	"psd/internal/tree":   true,
	"psd/internal/grid":   true,
	"psd/internal/ols":    true,
	"psd/internal/median": true,
	"psd/internal/rng":    true,
}

var bannedImports = map[string]string{
	"math/rand":    "ambient randomness breaks seed-replayable builds; draw from psd/internal/rng streams (rng.At)",
	"math/rand/v2": "ambient randomness breaks seed-replayable builds; draw from psd/internal/rng streams (rng.At)",
	"crypto/rand":  "system entropy can never be replayed from a seed; draw from psd/internal/rng streams (rng.At)",
}

var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, ambient randomness and map iteration in build/release packages: released bytes must be a pure function of (points, seed, ε)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.PkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %s in build/release package %s: %s", path, pass.PkgPath, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for fn := range bannedTimeFuncs {
					if pass.IsPkgFunc(n, "time", fn) {
						pass.Reportf(n.Pos(), "time.%s in build/release package %s: wall-clock readings make byte-identical rebuilds impossible; timing belongs in the serving/observability layer", fn, pass.PkgPath)
					}
				}
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in build/release package %s: Go randomizes map order, so anything this loop feeds into release output is nondeterministic; iterate a sorted key slice instead", pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}
