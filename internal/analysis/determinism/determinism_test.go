package determinism_test

import (
	"testing"

	"psd/internal/analysis/analysistest"
	"psd/internal/analysis/determinism"
)

func TestInScope(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "psd/internal/dp")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "psd/internal/serve")
}
