// Package serve is OUT of determinism's scope: the serving tier may jitter
// retries with ambient randomness and read the clock freely.
package serve

import (
	"math/rand"
	"time"
)

func jitter(d time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(d)))
}

func now() time.Time { return time.Now() }

func pick(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}
