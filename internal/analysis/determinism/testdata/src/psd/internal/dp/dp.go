package dp

import (
	crand "crypto/rand" // want `crypto/rand`
	"math/rand"        // want `ambient randomness breaks seed-replayable builds`
	"time"
)

func ambient() float64 {
	return rand.Float64()
}

func entropy() byte {
	var b [1]byte
	crand.Read(b[:])
	return b[0]
}

func clock() int64 {
	t := time.Now() // want `wall-clock readings make byte-identical rebuilds impossible`
	return t.Unix()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since`
}

func deadline(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time\.Until`
}

func allowedClock() time.Time {
	//lint:allow determinism -- audit metadata timestamp, never release bytes
	return time.Now()
}

func unjustified() time.Time {
	//lint:allow determinism // want `needs a justification`
	return time.Now() // want `wall-clock`
}

func mapWalk(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration .* nondeterministic`
		sum += v
	}
	return sum
}

func sliceWalk(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
