package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A finding that is a deliberate, justified exception is
// silenced with a directive comment:
//
//	//lint:allow <analyzer> -- <justification>
//
// either at the end of the offending line or on its own line immediately
// above it. The justification is mandatory: an allow without a reason is
// itself a finding, because an unexplained exception is how invariants rot.
// The directive names exactly one analyzer; silencing two analyzers on one
// line takes two directives.
const allowPrefix = "lint:allow"

type allowDirective struct {
	analyzer string
	// line is the source line the directive covers: its own line for an
	// end-of-line comment, the following line for a standalone comment.
	file string
	line int
}

type allowSet struct {
	directives []allowDirective
}

func (s *allowSet) covers(analyzer string, pos token.Position) bool {
	for _, d := range s.directives {
		if d.analyzer == analyzer && d.file == pos.Filename && d.line == pos.Line {
			return true
		}
	}
	return false
}

// parseAllows scans every comment in files for allow directives. Malformed
// directives (no justification, unknown analyzer) are returned as
// diagnostics under the reserved analyzer name "lintallow".
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (*allowSet, []Diagnostic) {
	set := &allowSet{}
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "lintallow", Pos: fset.Position(pos), Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		// Lines holding any non-comment code: an allow on such a line covers
		// the line itself; a comment alone on its line covers the next line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, justification, ok := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				justification = strings.TrimSpace(justification)
				if !ok || justification == "" {
					report(c.Pos(), "lint:allow directive needs a justification: //lint:allow <analyzer> -- <why this exception is sound>")
					continue
				}
				if name == "" || len(strings.Fields(name)) != 1 {
					report(c.Pos(), "lint:allow directive must name exactly one analyzer")
					continue
				}
				if known != nil && !known[name] {
					report(c.Pos(), "lint:allow names unknown analyzer %q", name)
					continue
				}
				pos := fset.Position(c.Pos())
				covered := pos.Line
				if !codeLines[pos.Line] {
					covered = pos.Line + 1
				}
				set.directives = append(set.directives, allowDirective{
					analyzer: name,
					file:     pos.Filename,
					line:     covered,
				})
			}
		}
	}
	return set, bad
}
