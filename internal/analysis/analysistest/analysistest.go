// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live at <analyzer pkg>/testdata/src/<import path>/*.go and are
// type-checked under exactly that import path, so analyzers that scope their
// rules by package path (most of psdlint) can be tested both in and out of
// scope. A fixture line expecting a finding carries a trailing comment:
//
//	os.Rename(a, b) // want `bypasses the fsync`
//
// The backquoted (or double-quoted) string is a regexp matched against the
// diagnostic message. Multiple `// want` patterns on one line expect multiple
// findings. Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"psd/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// Run loads testdata/src/<pkgpath> relative to the test's working directory,
// type-checks it as package pkgpath, runs a, and matches diagnostics against
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	pkg, err := check(fset, pkgpath, files)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkgpath, err)
	}

	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})

	// Collect wants: map file -> line -> patterns.
	type want struct {
		re      *regexp.Regexp
		raw     string
		line    int
		file    string
		matched bool
	}
	var wants []*want
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, raw := range splitPatterns(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, raw, err)
					}
					wants = append(wants, &want{re: re, raw: raw, line: line, file: filename})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses the tail of a want comment: a sequence of backquoted
// or double-quoted strings.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote, honoring escapes.
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return append(out, s)
			}
			unq, _ := strconv.Unquote(q)
			out = append(out, unq)
			s = strings.TrimSpace(s[len(q):])
		default:
			return out
		}
	}
	return out
}

var (
	exportsMu sync.Mutex
	exports   = map[string]string{}
	listed    = map[string]bool{}
)

// check type-checks fixture files as pkgpath, resolving imports (stdlib and
// psd module packages alike) through `go list -export` run from the module
// root. Export data is cached per test process.
func check(fset *token.FileSet, pkgpath string, files []*ast.File) (*analysis.Package, error) {
	var need []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p != "unsafe" {
				need = append(need, p)
			}
		}
	}
	if err := ensureExports(need); err != nil {
		return nil, err
	}
	exportsMu.Lock()
	snapshot := make(map[string]string, len(exports))
	for k, v := range exports {
		snapshot[k] = v
	}
	exportsMu.Unlock()
	return analysis.CheckFixture(fset, pkgpath, files, snapshot)
}

// ensureExports populates the export-data map for paths (and their deps).
func ensureExports(paths []string) error {
	exportsMu.Lock()
	defer exportsMu.Unlock()
	var missing []string
	for _, p := range paths {
		if !listed[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	m, err := analysis.ListExports(root, missing)
	if err != nil {
		return err
	}
	for k, v := range m {
		exports[k] = v
	}
	for _, p := range missing {
		listed[p] = true
	}
	return nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
