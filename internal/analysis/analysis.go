// Package analysis is a self-contained, stdlib-only reimplementation of the
// core of golang.org/x/tools/go/analysis, sized for this repository's needs.
// It exists because psd's invariants — determinism of release bytes, fsync
// discipline on durable artifacts, confinement of unsafe, checked Close/Sync
// errors, cancellation polling in traversals — are exactly the kind of rule
// that should be machine-checked on every change, and the module deliberately
// has no external dependencies.
//
// The shapes mirror go/analysis deliberately: an Analyzer owns a Run function
// over a Pass holding one type-checked package. Analyzers here are pure
// (no facts, no flags), which keeps both the standalone runner (cmd/psdlint)
// and the `go vet -vettool` unit-checker protocol small.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `psdlint help`.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string // canonical import path, test-variant suffix stripped
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The invariants
// guarded here are production-code invariants: tests stub clocks, write
// scratch files directly and ignore Close errors freely.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Filename returns the base filename holding pos (no directory).
func (p *Pass) Filename(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// BasePkgPath strips the " [pkg.test]" suffix the go tool appends to
// test-variant package paths, so scope checks see the real import path.
func BasePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// RunAnalyzers applies each analyzer to pkg, filters diagnostics through the
// //lint:allow escape hatch, and returns the surviving findings sorted by
// position. Malformed allow directives are themselves findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, out := parseAllows(pkg.Fset, pkg.Files, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   BasePkgPath(pkg.PkgPath),
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Pos:      token.Position{Filename: pkg.PkgPath},
				Message:  fmt.Sprintf("internal error: %v", err),
			})
			continue
		}
		for _, d := range pass.diags {
			if allows.covers(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// TypeOf is a nil-tolerant Pass.TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// ImportedPkg resolves an identifier that names an imported package (e.g. the
// `os` in os.Rename) to that package's canonical path, or "".
func (p *Pass) ImportedPkg(id *ast.Ident) string {
	o := p.ObjectOf(id)
	pn, ok := o.(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// IsPkgFunc reports whether call is a direct call of pkgPath.fname (e.g.
// "os", "Rename").
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, fname string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fname {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return p.ImportedPkg(id) == pkgPath
}
