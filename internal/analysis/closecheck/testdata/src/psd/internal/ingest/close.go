package ingest

import (
	"bufio"
	"io"
	"os"
)

// WAL is a module-declared writer: every discarded Close/Sync error on it is
// a durability hole.
type WAL struct{ f *os.File }

func (w *WAL) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *WAL) Sync() error                 { return w.f.Sync() }
func (w *WAL) Close() error                { return w.f.Close() }

func dropWriterClose(w *WAL) {
	w.Close() // want `error from w\.Close is discarded`
}

func dropWriterSync(w *WAL) {
	w.Sync() // want `error from w\.Sync is discarded`
}

func checkedClose(w *WAL) error {
	return w.Close()
}

func explicitDiscard(w *WAL) {
	_ = w.Close() // a visible decision: allowed
}

func justifiedDiscard(w *WAL) {
	w.Close() //lint:allow closecheck -- error path, the original error wins
}

func writtenFile(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data)
	f.Close() // want `error from f\.Close is discarded on a write-opened \*os\.File`
}

func deferredWrittenFile(path string) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return
	}
	defer f.Close() // want `error from f\.Close is discarded`
	f.WriteString("x")
}

func readOnlyFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close() // read-only close cannot lose data: allowed
	buf := make([]byte, 8)
	f.Read(buf)
}

func bufferedFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("x")
	bw.Flush() // want `error from bw\.Flush is discarded`
}

func writeCloserIface(wc io.WriteCloser) {
	wc.Close() // want `error from wc\.Close is discarded on a writable io\.WriteCloser`
}

func readCloserIface(rc io.ReadCloser) {
	rc.Close() // a reader's close loses nothing: allowed
}
