package closecheck_test

import (
	"testing"

	"psd/internal/analysis/analysistest"
	"psd/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, closecheck.Analyzer, "psd/internal/ingest")
}
