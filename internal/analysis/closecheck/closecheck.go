// Package closecheck flags discarded error returns from Close, Sync and
// Flush on writable files and writers. On a durable path these are not
// cleanup niceties: the OS may defer a write failure all the way to close(2)
// or fsync(2), so an ignored error there is a silent durability hole — the
// WAL, ledger and journal writers acknowledge data on exactly these calls.
//
// The rule: a statement-position call (bare, defer, or go) of
// Close()/Sync()/Flush() returning error is a finding when the receiver is
//
//   - an *os.File that this function provably opened for writing
//     (os.Create, os.CreateTemp, or os.OpenFile with O_WRONLY/O_RDWR/
//     O_APPEND) — read-only handles are exempt, their close cannot lose data;
//   - a type declared in this module that can write (has a Write method or a
//     writer-ish name: Writer/WAL/Ledger/Journal/Ingester);
//   - any other value whose method set includes Write (io.WriteCloser,
//     bufio.Writer, compress writers, net.Conn, ...).
//
// An error-path close where the original error must win is made explicit
// with `_ = f.Close()` — the discard is then a visible decision, which is
// the point. Exceptional cases carry //lint:allow closecheck -- <why>.
package closecheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"psd/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "unchecked error from Close/Sync/Flush on a writable file or writer: write failures can surface only at close/fsync, so discarding them is a silent durability hole",
	Run:  run,
}

var targetMethods = map[string]bool{"Close": true, "Sync": true, "Flush": true}

var writerishName = regexp.MustCompile(`(?i)(writer|wal\b|ledger|journal|ingest)`)

func run(pass *analysis.Pass) error {
	writable := writableFileVars(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !targetMethods[sel.Sel.Name] || len(call.Args) != 0 {
				return true
			}
			sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
			if !ok || sig.Results().Len() != 1 || sig.Results().At(0).Type().String() != "error" {
				return true
			}
			recvT := pass.TypeOf(sel.X)
			if recvT == nil {
				return true
			}
			why := classify(pass, sel.X, recvT, writable)
			if why == "" {
				return true
			}
			pass.Reportf(call.Pos(), "error from %s.%s is discarded on %s; write failures can surface only here — check it, discard explicitly with `_ =`, or justify with //lint:allow closecheck -- <why>",
				exprString(sel.X), sel.Sel.Name, why)
			return true
		})
	}
	return nil
}

// classify decides whether the receiver is a writable target, returning a
// short description (or "" to skip).
func classify(pass *analysis.Pass, recv ast.Expr, t types.Type, writable map[types.Object]bool) string {
	deref := t
	if p, ok := t.Underlying().(*types.Pointer); ok {
		deref = p.Elem()
	}
	if named, ok := deref.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			// Only files this function provably opened for writing.
			if id, ok := recv.(*ast.Ident); ok {
				if o := pass.ObjectOf(id); o != nil && writable[o] {
					return "a write-opened *os.File"
				}
			}
			return ""
		}
		if obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), "psd") {
			if writerishName.MatchString(obj.Name()) || hasWrite(t) {
				return "writer " + obj.Name()
			}
			return ""
		}
	}
	if hasWrite(t) {
		return "a writable " + t.String()
	}
	return ""
}

// hasWrite reports whether t's method set (or its pointer's) includes Write.
func hasWrite(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Write" {
				return true
			}
		}
	}
	return false
}

// writableFileVars walks the package for local variables bound to a
// write-mode file open, keyed by their object.
func writableFileVars(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isWritableOpen(pass, call) {
			return
		}
		if o := pass.ObjectOf(id); o != nil {
			out[o] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
					record(n.Lhs[0], n.Rhs[0])
				} else if len(n.Rhs) == len(n.Lhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) >= 1 {
					record(ast.Expr(n.Names[0]), n.Values[0])
				}
			}
			return true
		})
	}
	return out
}

// isWritableOpen recognizes os.Create, os.CreateTemp, and os.OpenFile whose
// flag expression mentions a write mode.
func isWritableOpen(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pass.IsPkgFunc(call, "os", "Create") || pass.IsPkgFunc(call, "os", "CreateTemp") {
		return true
	}
	if !pass.IsPkgFunc(call, "os", "OpenFile") || len(call.Args) < 2 {
		return false
	}
	writable := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		name := ""
		switch n := n.(type) {
		case *ast.SelectorExpr:
			name = n.Sel.Name
		case *ast.Ident:
			name = n.Name
		}
		switch name {
		case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE":
			writable = true
		}
		return true
	})
	return writable
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	default:
		return "receiver"
	}
}
