package unsafeconfine_test

import (
	"testing"

	"psd/internal/analysis/analysistest"
	"psd/internal/analysis/unsafeconfine"
)

func TestSeamAllowlist(t *testing.T) {
	analysistest.Run(t, unsafeconfine.Analyzer, "psd/internal/core")
}

func TestOutsideSeam(t *testing.T) {
	analysistest.Run(t, unsafeconfine.Analyzer, "psd/internal/grid")
}
