// Package unsafeconfine confines unsafe memory aliasing to the one audited
// seam. The zero-copy mmap read path reinterprets a page-cache-backed []byte
// as the slab's hot records; the casts that do so live in
// internal/core/unsafeslice.go (with the mmap syscall shims beside it) and
// were audited together: alignment checked at open, lifetimes tied to the
// mapping, no write path. Any new import of unsafe — or any
// reflect.SliceHeader/StringHeader aliasing, which is the same trick with
// fewer guardrails — outside that seam is an error everywhere in the module,
// tests included: an unaudited alias can corrupt served answers silently.
package unsafeconfine

import (
	"go/ast"
	"strconv"

	"psd/internal/analysis"
)

// seam is the audited set: package path -> file basenames allowed to import
// unsafe.
var seam = map[string]map[string]bool{
	"psd/internal/core": {
		"unsafeslice.go": true,
		"mmap_unix.go":   true,
		"mmap_other.go":  true,
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "unsafeconfine",
	Doc:  "unsafe and SliceHeader-style aliasing are confined to internal/core's audited mmap seam (unsafeslice.go); new uses elsewhere are errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	allowed := seam[pass.PkgPath]
	for _, f := range pass.Files {
		inSeam := allowed[pass.Filename(f.Pos())]
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			if inSeam {
				continue
			}
			pass.Reportf(imp.Pos(), "import of unsafe outside the audited mmap seam (psd/internal/core/unsafeslice.go); unaudited aliasing can silently corrupt served answers — extend the seam deliberately or find a safe formulation")
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "SliceHeader" && sel.Sel.Name != "StringHeader" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.ImportedPkg(id) != "reflect" {
				return true
			}
			pass.Reportf(sel.Pos(), "reflect.%s is unsafe aliasing without the audit trail; the only sanctioned reinterpretation lives in psd/internal/core/unsafeslice.go", sel.Sel.Name)
			return true
		})
	}
	return nil
}
