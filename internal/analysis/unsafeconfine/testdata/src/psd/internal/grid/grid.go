package grid

import (
	"reflect"
	"unsafe" // want `outside the audited mmap seam`
)

func alias(b []byte) uintptr {
	h := (*reflect.SliceHeader)(unsafe.Pointer(&b)) // want `reflect\.SliceHeader is unsafe aliasing`
	return h.Data
}
