// unsafeslice.go is the audited seam: unsafe is allowed here by name.
package core

import "unsafe"

func wordSize() uintptr { return unsafe.Sizeof(uintptr(0)) }
