package core

import "unsafe" // want `outside the audited mmap seam`

func strayAlias(b []byte) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[0]))
}
