package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list` with args in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.ImporterFrom over a map of canonical import
// path -> compiler export data file, as produced by `go list -export`. The
// importMap translates source-level import strings (which may be vendored or
// remapped) to canonical paths first.
type exportImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &exportImporter{gc: gc, importMap: importMap}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := ei.importMap[path]; ok && mapped != "" {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.ImportFrom(path, dir, 0)
}

// checkFiles type-checks already-parsed files as package pkgPath using imp.
func checkFiles(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	cfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := cfg.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return tpkg, info, firstErr
	}
	if err != nil {
		return tpkg, info, err
	}
	return tpkg, info, nil
}

// ListExports runs `go list -deps -export` over paths rooted at dir and
// returns the canonical-import-path -> export-data-file map, for callers
// (the analysistest harness) that assemble their own type-check.
func ListExports(dir string, paths []string) (map[string]string, error) {
	deps, err := goList(dir, append([]string{
		"list", "-deps", "-export", "-json=ImportPath,Export,Error", "--",
	}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
	}
	return exports, nil
}

// CheckFixture type-checks parsed fixture files as package pkgpath against
// the given export-data map and wraps the result as a Package.
func CheckFixture(fset *token.FileSet, pkgpath string, files []*ast.File, exports map[string]string) (*Package, error) {
	imp := newExportImporter(fset, exports, nil)
	tpkg, info, err := checkFiles(fset, pkgpath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgpath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// LoadPackages loads, parses and type-checks the module packages matching
// patterns, rooted at dir. Dependencies (standard library and sibling module
// packages alike) are imported from compiler export data, so each target
// package checks independently and quickly.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t.ImportPath] = true
	}

	deps, err := goList(dir, append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,ImportMap,Error",
	}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, p := range deps {
		if !targetSet[p.ImportPath] {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			full := name
			if !strings.HasPrefix(name, "/") {
				full = p.Dir + "/" + name
			}
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", full, err)
			}
			files = append(files, f)
		}
		imp := newExportImporter(fset, exports, p.ImportMap)
		tpkg, info, err := checkFiles(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath:   p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return out, nil
}
