// Command psdingest is the crash-safe streaming ingest daemon: the write
// side of the publish-then-serve split. Points stream in over HTTP and are
// appended to a checksummed, fsync'd write-ahead log BEFORE they are
// acknowledged; on a count cadence, a time cadence, or an operator request
// the daemon rebuilds the decomposition over everything acknowledged so far
// and publishes it as an immutable versioned release ("name@vN.bin") into a
// psdserve watch directory. Every published version is charged to a
// persistent per-name privacy ledger before its artifact becomes visible,
// so the ε spend survives crashes and restarts; once the budget cannot fund
// another epoch the daemon keeps ingesting and the serving tier keeps
// answering from the last release, but publishing refuses.
//
// The headline guarantee: SIGKILL the process at ANY instant and restart
// it — no acknowledged point is lost, any half-finished publication is
// rolled forward to the byte-identical artifact the uncrashed run would
// have produced, and the ledger never under-counts. `psdingest verify`
// audits exactly that from the on-disk state.
//
// Usage:
//
//	psdingest -addr :9090 -name taxi -state /var/psd/ingest \
//	  -publish /var/psd/releases -domain 0,0,100,100 -kind quadtree \
//	  -height 6 -seed 42 -budget 10 -epoch-eps 1 \
//	  -rebuild-count 10000 -interval 30s -keep 4
//
//	psdingest verify -name taxi -state /var/psd/ingest \
//	  -publish /var/psd/releases -domain 0,0,100,100 -kind quadtree \
//	  -height 6 -seed 42 -budget 10 -epoch-eps 1
//
// Endpoints:
//
//	POST /ingest    {"points":[[x,y],...]} → appended + fsync'd before the
//	                200 acknowledges them
//	POST /publish   operator-triggered publish of the next version
//	GET  /stats     ingest counters, budget state, wedge status (JSON)
//	GET  /metrics   the same in Prometheus text format
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 while draining)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"psd"
	"psd/internal/ingest"
	"psd/internal/promtext"
)

func main() {
	logger := log.New(os.Stderr, "psdingest: ", log.LstdFlags)
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "verify" {
		if err := runVerify(args[1:], logger, os.Stdout); err != nil {
			logger.Fatal(err)
		}
		return
	}
	if err := run(args, logger); err != nil {
		logger.Fatal(err)
	}
}

// buildFlags registers the flags shared by the daemon and the verify
// subcommand — everything needed to reproduce a build deterministically.
// Per-version seed and ε live in the journal; the decomposition shape and
// domain are configuration and must match what the daemon ran with.
type buildFlags struct {
	name, state, publish string
	domain               string
	kind                 string
	height               int
	seed                 int64
	budget, epochEps     float64
	keep                 int
}

func (b *buildFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&b.name, "name", "", "release name; versions publish as name@vN.bin")
	fs.StringVar(&b.state, "state", "", "state directory (WAL, privacy ledger, versions journal)")
	fs.StringVar(&b.publish, "publish", "", "publish directory (a psdserve watch dir)")
	fs.StringVar(&b.domain, "domain", "", "data domain as lox,loy,hix,hiy")
	fs.StringVar(&b.kind, "kind", "quadtree",
		"tree kind: quadtree, kd, kd-hybrid, hilbert-r, kd-cell, kd-noisymean, privtree")
	fs.IntVar(&b.height, "height", 6, "tree height")
	fs.Int64Var(&b.seed, "seed", 1, "base RNG seed; version v builds with seed+v")
	fs.Float64Var(&b.budget, "budget", 0, "total per-name ε budget the ledger enforces (0 = unlimited)")
	fs.Float64Var(&b.epochEps, "epoch-eps", 1, "ε charged per published version")
	fs.IntVar(&b.keep, "keep", 0, "published artifacts to retain, older ones pruned (0 keeps all)")
}

var kinds = map[string]psd.Kind{
	"quadtree": psd.QuadtreeKind, "kd": psd.KDTree, "kd-hybrid": psd.KDHybrid,
	"hilbert-r": psd.HilbertRTree, "kd-cell": psd.KDCellTree,
	"kd-noisymean": psd.KDNoisyMeanTree, "privtree": psd.PrivTreeKind,
}

// config assembles the ingest.Config, validating everything the flag
// package cannot.
func (b *buildFlags) config(logger *log.Logger) (ingest.Config, error) {
	var cfg ingest.Config
	kind, ok := kinds[b.kind]
	if !ok {
		return cfg, fmt.Errorf("unknown kind %q", b.kind)
	}
	dom, err := parseDomain(b.domain)
	if err != nil {
		return cfg, err
	}
	return ingest.Config{
		Name:         b.name,
		StateDir:     b.state,
		PublishDir:   b.publish,
		Domain:       dom,
		Build:        psd.Options{Kind: kind, Height: b.height, Seed: b.seed},
		Budget:       b.budget,
		EpochEpsilon: b.epochEps,
		Keep:         b.keep,
		Logger:       logger,
	}, nil
}

func parseDomain(s string) (psd.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return psd.Rect{}, fmt.Errorf("-domain wants lox,loy,hix,hiy, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return psd.Rect{}, fmt.Errorf("-domain coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	return psd.NewRect(v[0], v[1], v[2], v[3]), nil
}

func run(args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("psdingest", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address")
	interval := fs.Duration("interval", 0, "publish cadence: rebuild when any new points arrived (0 disables)")
	rebuildCount := fs.Int("rebuild-count", 0, "publish after this many new points (0 disables)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	var bf buildFlags
	bf.register(fs)
	fs.Parse(args)

	cfg, err := bf.config(logger)
	if err != nil {
		return err
	}
	cfg.RebuildCount = *rebuildCount
	in, err := ingest.Open(cfg)
	if err != nil {
		return err
	}
	defer func() {
		// Close aggregates WAL/ledger/journal close errors; at shutdown
		// they are worth a log line even though the data is already synced.
		if cerr := in.Close(); cerr != nil {
			logger.Printf("close: %v", cerr)
		}
	}()
	st := in.Stats()
	logger.Printf("opened %q: %d points replayed, latest v%d, ε %g/%g spent",
		st.Name, st.Points, st.LatestVersion, st.Spent, st.Budget)

	srv := newServer(in, logger)
	httpSrv := &http.Server{Handler: srv.handler(), ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", *addr, err)
	}
	srv.ready.Store(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The publisher goroutine serializes every non-manual publish: the
	// ingest handler nudges it on the count cadence, the ticker drives the
	// time cadence. Refusals (no trigger yet, nothing new) are the steady
	// state and stay quiet; real failures wedge the pipeline and are loud.
	go func() {
		var tick <-chan time.Time
		if *interval > 0 {
			t := time.NewTicker(*interval)
			defer t.Stop()
			tick = t.C
		}
		for {
			var trig ingest.Trigger
			select {
			case <-ctx.Done():
				return
			case trig = <-srv.publishCh:
			case <-tick:
				trig = ingest.TriggerInterval
			}
			if _, err := in.Publish(trig); err != nil &&
				!errors.Is(err, ingest.ErrNoTrigger) && !errors.Is(err, ingest.ErrNoNewPoints) {
				logger.Printf("publish: %v", err)
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()

	srv.ready.Store(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Print("bye")
	return nil
}

// runVerify is the audit subcommand: replay the on-disk state (completing
// any interrupted publication exactly as a daemon restart would), rebuild
// every published version from the WAL, and bit-compare against the
// journal's checksums and the artifacts in the publish directory. Exit
// status is the verdict, so scripts can gate on it.
func runVerify(args []string, logger *log.Logger, out io.Writer) error {
	fs := flag.NewFlagSet("psdingest verify", flag.ExitOnError)
	var bf buildFlags
	bf.register(fs)
	fs.Parse(args)

	cfg, err := bf.config(logger)
	if err != nil {
		return err
	}
	in, err := ingest.Open(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := in.Close(); cerr != nil {
			logger.Printf("close: %v", cerr)
		}
	}()
	checks, err := in.Verify()
	if err != nil {
		return err
	}
	bad := 0
	for _, c := range checks {
		status := "ok"
		if !c.OK {
			status = "MISMATCH"
			bad++
		}
		artifact := c.ArtifactCRC
		if c.Pruned {
			artifact = "(pruned)"
		}
		fmt.Fprintf(out, "v%d\t%d points\tjournal=%s rebuilt=%s artifact=%s\t%s\n",
			c.Version, c.Points, c.JournalCRC, c.RebuiltCRC, artifact, status)
	}
	if bad > 0 {
		return fmt.Errorf("verify: %d of %d versions failed the bit-compare", bad, len(checks))
	}
	fmt.Fprintf(out, "verify: %d versions, all byte-identical\n", len(checks))
	return nil
}

// server is the daemon's HTTP surface over one Ingester.
type server struct {
	in     *ingest.Ingester
	logger *log.Logger
	ready  atomic.Bool
	// publishCh nudges the publisher goroutine (capacity 1: publishing
	// covers every acknowledged point, so coalescing nudges is correct).
	publishCh chan ingest.Trigger
}

func newServer(in *ingest.Ingester, logger *log.Logger) *server {
	return &server{in: in, logger: logger, publishCh: make(chan ingest.Trigger, 1)}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxIngestBody bounds one ingest request (~2M points as JSON).
const maxIngestBody = 64 << 20

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Points [][2]float64 `json:"points"`
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"ingest body exceeds the %d-byte limit", int64(maxIngestBody))
			return
		}
		writeError(w, http.StatusBadRequest, "bad ingest body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "no points")
		return
	}
	pts := make([]psd.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = psd.Point{X: p[0], Y: p[1]}
	}
	total, err := s.in.Ingest(pts)
	if err != nil {
		// A rejected batch is the client's fault (400); a failed append is
		// the WAL's (500) — and the client must NOT treat it as accepted.
		status := http.StatusInternalServerError
		if errors.Is(err, ingest.ErrBadPoint) {
			status = http.StatusBadRequest
		}
		writeError(w, status, "%v", err)
		return
	}
	// The 200 IS the durability acknowledgment: the points are fsync'd.
	writeJSON(w, http.StatusOK, map[string]any{"added": len(pts), "total": total})
	// Nudge the count cadence; a full channel means a publish check is
	// already queued, which covers this batch too.
	select {
	case s.publishCh <- ingest.TriggerCount:
	default:
	}
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	res, err := s.in.Publish(ingest.TriggerManual)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{
			"version": res.Version, "points": res.Points, "bytes": res.Bytes,
			"crc64": res.CRC64, "path": res.Path, "eps": res.Eps,
		})
	case errors.Is(err, ingest.ErrNoNewPoints) || errors.Is(err, ingest.ErrNoTrigger):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ingest.ErrBudgetExhausted):
		writeError(w, http.StatusForbidden, "%v", err)
	default:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.in.Stats())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.in.Stats()
	bool01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	var buf strings.Builder
	pw := promtext.NewWriter(&buf)
	for _, m := range []struct {
		name, typ, help string
		v               float64
	}{
		{"psdingest_points_total", "counter", "Acknowledged (fsync'd) points in the WAL.", float64(st.Points)},
		{"psdingest_pending_points", "gauge", "Points not yet covered by a published version.", float64(st.PendingPoints)},
		{"psdingest_wal_segments", "gauge", "WAL segment files.", float64(st.WALSegments)},
		{"psdingest_wal_bytes", "gauge", "WAL bytes on disk.", float64(st.WALBytes)},
		{"psdingest_wal_broken", "gauge", "1 when the WAL is in the sticky broken state (restart to recover).", bool01(st.WALBroken)},
		{"psdingest_budget_epsilon", "gauge", "Total per-name privacy budget (0 = unlimited).", st.Budget},
		{"psdingest_budget_spent_epsilon", "gauge", "Privacy budget charged so far.", st.Spent},
		{"psdingest_budget_exhausted", "gauge", "1 when the next epoch cannot be funded: publishing refuses, ingest and serving continue.", bool01(st.BudgetExhausted)},
		{"psdingest_latest_version", "gauge", "Latest published version number.", float64(st.LatestVersion)},
		{"psdingest_published_total", "counter", "Versions published (including recovered ones).", float64(st.Published)},
		{"psdingest_recovered_total", "counter", "Publications rolled forward by crash recovery.", float64(st.Recovered)},
		{"psdingest_refused_total", "counter", "Publishes refused for budget exhaustion.", float64(st.Refused)},
		{"psdingest_ingest_errors_total", "counter", "Failed (unacknowledged) ingest appends.", float64(st.IngestErrors)},
		{"psdingest_wedged", "gauge", "1 when the publish pipeline is wedged by a mid-cycle failure (restart to recover).", bool01(st.Wedged != "")},
	} {
		pw.Family(m.name, m.typ, m.help)
		pw.Sample(m.name, nil, m.v)
	}
	if pw.Err() != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", pw.Err())
		return
	}
	w.Header().Set("Content-Type", promtext.ContentType)
	fmt.Fprint(w, buf.String())
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}
