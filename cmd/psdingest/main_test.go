package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psd"
	"psd/internal/ingest"
)

// testDirs returns fresh state and publish directories.
func testDirs(t *testing.T) (state, publish string) {
	t.Helper()
	root := t.TempDir()
	return filepath.Join(root, "state"), filepath.Join(root, "publish")
}

func testConfig(t *testing.T, state, publish string, budget float64) ingest.Config {
	t.Helper()
	return ingest.Config{
		Name:         "taxi",
		StateDir:     state,
		PublishDir:   publish,
		Domain:       psd.NewRect(0, 0, 100, 100),
		Build:        psd.Options{Kind: psd.QuadtreeKind, Height: 4, Seed: 42},
		Budget:       budget,
		EpochEpsilon: 1,
		Logger:       log.New(io.Discard, "", 0),
	}
}

func openServer(t *testing.T, cfg ingest.Config) (*ingest.Ingester, *httptest.Server) {
	t.Helper()
	in, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	srv := httptest.NewServer(newServer(in, cfg.Logger).handler())
	t.Cleanup(srv.Close)
	return in, srv
}

func postBody(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d (%s)", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func ingestBody(n int, salt float64) []byte {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{float64(i%97) + salt, float64(i%89) + salt}
	}
	b, _ := json.Marshal(map[string]any{"points": pts})
	return b
}

func TestDaemonHTTPSurface(t *testing.T) {
	state, publish := testDirs(t)
	_, srv := openServer(t, testConfig(t, state, publish, 10))

	// Nothing published yet: a manual publish with zero points refuses.
	postBody(t, srv.URL+"/publish", nil, http.StatusConflict, nil)

	var ack struct {
		Added int    `json:"added"`
		Total uint64 `json:"total"`
	}
	postBody(t, srv.URL+"/ingest", ingestBody(100, 0), http.StatusOK, &ack)
	if ack.Added != 100 || ack.Total != 100 {
		t.Fatalf("ingest ack = %+v", ack)
	}

	// Malformed and non-finite batches are rejected whole, acknowledging
	// nothing.
	postBody(t, srv.URL+"/ingest", []byte("{bad"), http.StatusBadRequest, nil)
	postBody(t, srv.URL+"/ingest", []byte(`{"points":[]}`), http.StatusBadRequest, nil)
	nan, _ := json.Marshal(map[string]any{"points": []any{[]any{1.0, "NaN"}}})
	postBody(t, srv.URL+"/ingest", nan, http.StatusBadRequest, nil)

	var pub struct {
		Version int    `json:"version"`
		Points  uint64 `json:"points"`
		CRC64   string `json:"crc64"`
		Path    string `json:"path"`
	}
	postBody(t, srv.URL+"/publish", nil, http.StatusOK, &pub)
	if pub.Version != 1 || pub.Points != 100 || len(pub.CRC64) != 16 {
		t.Fatalf("publish = %+v", pub)
	}
	if _, err := os.Stat(pub.Path); err != nil {
		t.Fatalf("published artifact missing: %v", err)
	}
	// No new points since v1: refuse rather than burn ε on a no-op.
	postBody(t, srv.URL+"/publish", nil, http.StatusConflict, nil)

	var st ingest.Stats
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Points != 100 || st.LatestVersion != 1 || st.Spent != 1 || st.IngestErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"psdingest_points_total 100",
		"psdingest_latest_version 1",
		"psdingest_budget_spent_epsilon 1",
		"psdingest_budget_exhausted 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestDaemonBudgetExhaustion(t *testing.T) {
	state, publish := testDirs(t)
	_, srv := openServer(t, testConfig(t, state, publish, 1.5))

	postBody(t, srv.URL+"/ingest", ingestBody(50, 0), http.StatusOK, nil)
	postBody(t, srv.URL+"/publish", nil, http.StatusOK, nil)
	postBody(t, srv.URL+"/ingest", ingestBody(50, 0.5), http.StatusOK, nil)
	// The second epoch would need ε=1 with only 0.5 left: a durable refusal.
	postBody(t, srv.URL+"/publish", nil, http.StatusForbidden, nil)
	// Ingest continues: exhaustion degrades publishing, not ingestion.
	postBody(t, srv.URL+"/ingest", ingestBody(10, 0.25), http.StatusOK, nil)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"psdingest_budget_exhausted 1", "psdingest_refused_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestVerifySubcommand runs the audit against a real publish history, then
// corrupts an artifact and expects the bit-compare to fail loudly.
func TestVerifySubcommand(t *testing.T) {
	state, publish := testDirs(t)
	cfg := testConfig(t, state, publish, 10)
	in, err := ingest.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Ingest(walPoints(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Publish(ingest.TriggerManual); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Ingest(walPoints(60)); err != nil {
		t.Fatal(err)
	}
	res, err := in.Publish(ingest.TriggerManual)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	args := []string{
		"-name", "taxi", "-state", state, "-publish", publish,
		"-domain", "0,0,100,100", "-kind", "quadtree", "-height", "4",
		"-seed", "42", "-budget", "10", "-epoch-eps", "1",
	}
	logger := log.New(io.Discard, "", 0)
	var out bytes.Buffer
	if err := runVerify(args, logger, &out); err != nil {
		t.Fatalf("verify on a clean history: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 versions, all byte-identical") {
		t.Fatalf("verify output:\n%s", out.String())
	}

	// Flip one byte of the latest artifact: the journal and rebuild still
	// agree, but the on-disk artifact must fail the compare.
	data, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(res.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runVerify(args, logger, &out)
	if err == nil || !strings.Contains(err.Error(), "failed the bit-compare") {
		t.Fatalf("verify on a corrupted artifact returned %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MISMATCH") {
		t.Fatalf("verify output:\n%s", out.String())
	}

	// A mismatched build configuration (different height) is also caught:
	// the rebuild no longer matches the journal.
	badArgs := append([]string(nil), args...)
	for i, a := range badArgs {
		if a == "-height" {
			badArgs[i+1] = "5"
		}
	}
	out.Reset()
	if err := runVerify(badArgs, logger, &out); err == nil {
		t.Fatalf("verify with the wrong build config passed:\n%s", out.String())
	}
}

func walPoints(n int) []psd.Point {
	pts := make([]psd.Point, n)
	for i := range pts {
		pts[i] = psd.Point{X: float64(i%97) + 0.5, Y: float64(i%89) + 0.25}
	}
	return pts
}

func TestParseDomain(t *testing.T) {
	if _, err := parseDomain("0,0,100"); err == nil {
		t.Fatal("three coordinates accepted")
	}
	if _, err := parseDomain("a,b,c,d"); err == nil {
		t.Fatal("garbage accepted")
	}
	dom, err := parseDomain("1, 2, 3, 4")
	if err != nil || dom != psd.NewRect(1, 2, 3, 4) {
		t.Fatalf("parseDomain = %v, %v", dom, err)
	}
	if _, err := (&buildFlags{kind: "nope", domain: "0,0,1,1"}).config(log.New(io.Discard, "", 0)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
