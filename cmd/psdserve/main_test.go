package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestEndToEnd exercises the real binary: build it, start it against the
// golden quadtree release, answer the golden query set over HTTP (single
// and batch paths must agree with the recorded answers exactly), then send
// SIGTERM and require a clean graceful exit.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "psdserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = filepath.Join(repoRoot, "cmd", "psdserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port; the tiny window between Close and the server's bind is
	// an acceptable flake risk for a local loopback listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	fixture := filepath.Join(repoRoot, "testdata", "release_quadtree.json")
	cmd := exec.Command(bin, "-addr", addr,
		"-release", "quadtree="+fixture,
		"-release", "privtree="+filepath.Join(repoRoot, "testdata", "release_privtree.json"),
		"-release", "privbin="+filepath.Join(repoRoot, "testdata", "release_privtree.bin"))
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatalf("server never became healthy; logs:\n%s", logs.String())
	}

	var golden struct {
		Release string `json:"release"`
		Queries []struct {
			Rect  [4]float64 `json:"rect"`
			Count float64    `json:"count"`
		} `json:"queries"`
	}
	data, err := os.ReadFile(filepath.Join(repoRoot, "testdata", "golden_queries.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	// Single-query path.
	for _, q := range golden.Queries {
		url := fmt.Sprintf("%s/v1/releases/%s/count?rect=%g,%g,%g,%g",
			base, golden.Release, q.Rect[0], q.Rect[1], q.Rect[2], q.Rect[3])
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Count float64 `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || out.Count != q.Count {
			t.Fatalf("query %v: status %d count %v, want %v",
				q.Rect, resp.StatusCode, out.Count, q.Count)
		}
	}

	// Batch path returns the same answers in order.
	rects := make([][4]float64, len(golden.Queries))
	for i, q := range golden.Queries {
		rects[i] = q.Rect
	}
	body, _ := json.Marshal(map[string]any{"rects": rects})
	resp, err := http.Post(base+"/v1/releases/"+golden.Release+"/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Counts    []float64 `json:"counts"`
		CacheHits int       `json:"cache_hits"`
	}
	err = json.NewDecoder(resp.Body).Decode(&batch)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Counts) != len(golden.Queries) {
		t.Fatalf("batch returned %d counts", len(batch.Counts))
	}
	for i, q := range golden.Queries {
		if batch.Counts[i] != q.Count {
			t.Fatalf("batch[%d] = %v, want %v", i, batch.Counts[i], q.Count)
		}
	}
	// Every rect was answered (and cached) by the single-query pass.
	if batch.CacheHits != len(golden.Queries) {
		t.Errorf("batch cache hits = %d, want %d", batch.CacheHits, len(golden.Queries))
	}

	// The adaptive-kind fixture serves through both encodings: every golden
	// rect must come back bit-identical from the JSON- and binary-backed
	// releases, on the single-query and the batch path alike.
	count := func(release string, rect [4]float64) float64 {
		t.Helper()
		url := fmt.Sprintf("%s/v1/releases/%s/count?rect=%g,%g,%g,%g",
			base, release, rect[0], rect[1], rect[2], rect[3])
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Count float64 `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", url, resp.StatusCode, err)
		}
		return out.Count
	}
	privWant := make([]float64, len(rects))
	for i, r := range rects {
		privWant[i] = count("privtree", r)
		if got := count("privbin", r); got != privWant[i] {
			t.Fatalf("privtree rect %v: binary-served %v, JSON-served %v", r, got, privWant[i])
		}
	}
	resp, err = http.Post(base+"/v1/releases/privbin/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var privBatch struct {
		Counts []float64 `json:"counts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&privBatch)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(privBatch.Counts) != len(rects) {
		t.Fatalf("privtree batch: status %d, %d counts for %d rects",
			resp.StatusCode, len(privBatch.Counts), len(rects))
	}
	for i := range rects {
		if privBatch.Counts[i] != privWant[i] {
			t.Fatalf("privtree batch[%d] = %v, single-query %v", i, privBatch.Counts[i], privWant[i])
		}
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not shut down; logs:\n%s", logs.String())
	}
}

// TestStartupErrors pins the non-zero-exit contract: every misconfiguration
// — unreadable release, missing or non-directory watch dir, nothing to
// serve, unbindable address — must surface as a descriptive error from run,
// not a silent partial start.
func TestStartupErrors(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(repoRoot, "testdata", "release_quadtree.json")

	// Occupy a port so binding it fails.
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	notDir := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(notDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string // substring the error must carry
	}{
		{
			name: "unreadable release",
			args: []string{"-release", "bad=" + filepath.Join(t.TempDir(), "no-such.json")},
			want: "no-such.json",
		},
		{
			name: "missing watch dir",
			args: []string{"-dir", filepath.Join(t.TempDir(), "absent")},
			want: "watch directory",
		},
		{
			name: "watch dir is a file",
			args: []string{"-dir", notDir},
			want: "not a directory",
		},
		{
			name: "nothing to serve",
			args: nil,
			want: "nothing to serve",
		},
		{
			name: "bind failure",
			args: []string{"-release", "q=" + fixture, "-addr", busy.Addr().String()},
			want: "bind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var logs bytes.Buffer
			logger := log.New(&logs, "", 0)
			err := run(tc.args, logger)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}
