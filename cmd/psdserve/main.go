// Command psdserve serves range-count queries over published PSD releases.
//
// A release is the ε-differentially private artifact a curator builds once
// (psd.Tree.WriteRelease for JSON, psd.Tree.WriteBinaryRelease for the
// binary columnar format v2); answering queries against it is free
// post-processing, so one server can handle unlimited traffic with no
// further privacy spend. psdserve loads one or more releases — either
// format, sniffed from the leading bytes — into a named registry of flat
// query slabs and answers single and batch queries over HTTP, caching
// repeated answers in a bounded sharded LRU. Binary artifacts decode
// straight into the serving columns; prefer them where reload latency
// matters (see `psdtool convert`).
//
// Usage:
//
//	psdserve -addr :8080 -release roads=roads.bin -release salaries=sal.json
//	psdserve -addr :8080 -dir /var/releases   # serve every *.json/*.bin in dir
//
// Endpoints:
//
//	GET    /healthz                      liveness
//	GET    /readyz                       readiness (503 while loading/draining)
//	GET    /stats                        process-level fault/traffic counters
//	GET    /v1/releases                  list releases (+ quarantine)
//	POST   /v1/releases/{name}           register/replace a release (hot reload)
//	DELETE /v1/releases/{name}           unregister
//	GET    /v1/releases/{name}/count     ?rect=lox,loy,hix,hiy
//	POST   /v1/releases/{name}/batch     {"rects":[[lox,loy,hix,hiy],...]}
//	GET    /v1/releases/{name}/regions   effective leaf regions
//	GET    /v1/releases/{name}/stats     query counts, cache hit rate, latency
//	POST   /v1/reload                    rescan -dir (changed files only)
//
// The server drains gracefully on SIGINT/SIGTERM: /readyz flips to 503
// first (so load balancers stop routing new work), then after -drain-delay
// the listener closes and in-flight requests finish (up to
// -shutdown-timeout) before the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"psd/internal/serve"
)

// nameEqPath accumulates repeated -release name=path flags.
type nameEqPath []struct{ name, path string }

func (v *nameEqPath) String() string { return fmt.Sprint(*v) }

func (v *nameEqPath) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*v = append(*v, struct{ name, path string }{name, path})
	return nil
}

func main() {
	logger := log.New(os.Stderr, "psdserve: ", log.LstdFlags)
	if err := run(os.Args[1:], logger); err != nil {
		logger.Fatal(err)
	}
}

// run is the whole server lifecycle, separated from main so startup
// failures are testable: any error — bad flags aside (the flag package
// exits itself) — comes back here and exits the process non-zero through
// one path, with nothing half-started left behind.
func run(args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("psdserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("dir", "", "watch directory: serve every *.json/*.bin in it, rescanned by POST /v1/reload")
	cacheSize := fs.Int("cache", 1<<16, "per-release answer cache capacity (0 disables)")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body bytes")
	maxBatch := fs.Int("max-batch", serve.DefaultMaxBatch, "max rectangles per batch request")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently served /v1 requests before shedding with 503 (0 disables)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline; late traversals are abandoned and answered 503 (0 disables)")
	drainDelay := fs.Duration("drain-delay", 0, "pause between flipping /readyz to 503 and closing the listener, so load balancers stop routing first")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	var releases nameEqPath
	fs.Var(&releases, "release", "release to serve as name=path (repeatable)")
	fs.Parse(args)

	reg := serve.NewRegistry(*cacheSize)
	reg.SetLogger(logger)
	// An explicitly named release that does not load is a configuration
	// error: exit rather than silently serve less than asked.
	for _, r := range releases {
		rel, err := reg.LoadFile(r.name, r.path)
		if err != nil {
			return fmt.Errorf("loading %s: %w", r.path, err)
		}
		logger.Printf("serving %q: %s h=%d eps=%g, %d regions (%d bytes)",
			rel.Name, rel.Slab.Kind(), rel.Slab.Height(), rel.Slab.PrivacyCost(),
			rel.NumRegions, rel.Bytes)
	}
	if *dir != "" {
		// The directory itself must be readable (glob quietly matches
		// nothing on a missing path, so check explicitly) — but individual
		// bad artifacts inside it are quarantined, not fatal: a replica
		// must come up with whatever does load.
		info, err := os.Stat(*dir)
		if err != nil {
			return fmt.Errorf("watch directory: %w", err)
		}
		if !info.IsDir() {
			return fmt.Errorf("watch directory %s: not a directory", *dir)
		}
		loaded, _, err := reg.ScanDir(*dir)
		if err != nil {
			logger.Printf("scanning %s (bad artifacts quarantined, serving the rest): %v", *dir, err)
		}
		logger.Printf("loaded %d release(s) from %s: %v", len(loaded), *dir, loaded)
	}
	if reg.Len() == 0 && *dir == "" {
		return errors.New("nothing to serve: pass -release name=path or -dir (releases can also be POSTed at runtime)")
	}

	api := &serve.API{
		Registry:       reg,
		WatchDir:       *dir,
		MaxBodyBytes:   *maxBody,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
		Logger:         logger,
	}
	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Bind before declaring readiness: a replica that cannot listen must
	// exit non-zero, not report ready to a balancer.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", *addr, err)
	}
	api.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d releases)", ln.Addr(), reg.Len())
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()

	// Drain: readiness flips BEFORE the listener closes, so the balancer
	// routes away while this replica still accepts (and finishes) work;
	// only after the drain delay does Shutdown stop accepting and wait out
	// the in-flight requests.
	api.SetReady(false)
	logger.Printf("draining: /readyz now 503 (delay %s, grace %s)", *drainDelay, *shutdownTimeout)
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Print("bye")
	return nil
}
