// Command psdserve serves range-count queries over published PSD releases.
//
// A release is the ε-differentially private artifact a curator builds once
// (psd.Tree.WriteRelease for JSON, psd.Tree.WriteBinaryRelease for the
// binary columnar format v2); answering queries against it is free
// post-processing, so one server can handle unlimited traffic with no
// further privacy spend. psdserve loads one or more releases — either
// format, sniffed from the leading bytes — into a named registry of flat
// query slabs and answers single and batch queries over HTTP, caching
// repeated answers in a bounded sharded LRU. Binary artifacts decode
// straight into the serving columns; prefer them where reload latency
// matters (see `psdtool convert`).
//
// Usage:
//
//	psdserve -addr :8080 -release roads=roads.bin -release salaries=sal.json
//	psdserve -addr :8080 -dir /var/releases   # serve every *.json/*.bin in dir
//
// Endpoints:
//
//	GET    /healthz                      liveness
//	GET    /v1/releases                  list releases
//	POST   /v1/releases/{name}           register/replace a release (hot reload)
//	DELETE /v1/releases/{name}           unregister
//	GET    /v1/releases/{name}/count     ?rect=lox,loy,hix,hiy
//	POST   /v1/releases/{name}/batch     {"rects":[[lox,loy,hix,hiy],...]}
//	GET    /v1/releases/{name}/regions   effective leaf regions
//	GET    /v1/releases/{name}/stats     query counts, cache hit rate, latency
//	POST   /v1/reload                    rescan -dir (changed files only)
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests finish (up to -shutdown-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"psd/internal/serve"
)

// nameEqPath accumulates repeated -release name=path flags.
type nameEqPath []struct{ name, path string }

func (v *nameEqPath) String() string { return fmt.Sprint(*v) }

func (v *nameEqPath) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*v = append(*v, struct{ name, path string }{name, path})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "watch directory: serve every *.json/*.bin in it, rescanned by POST /v1/reload")
	cacheSize := flag.Int("cache", 1<<16, "per-release answer cache capacity (0 disables)")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body bytes")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max rectangles per batch request")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	var releases nameEqPath
	flag.Var(&releases, "release", "release to serve as name=path (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "psdserve: ", log.LstdFlags)
	reg := serve.NewRegistry(*cacheSize)
	for _, r := range releases {
		rel, err := reg.LoadFile(r.name, r.path)
		if err != nil {
			logger.Fatalf("loading %s: %v", r.path, err)
		}
		logger.Printf("serving %q: %s h=%d eps=%g, %d regions (%d bytes)",
			rel.Name, rel.Slab.Kind(), rel.Slab.Height(), rel.Slab.PrivacyCost(),
			rel.NumRegions, rel.Bytes)
	}
	if *dir != "" {
		loaded, _, err := reg.ScanDir(*dir)
		if err != nil {
			logger.Fatalf("scanning %s: %v", *dir, err)
		}
		logger.Printf("loaded %d release(s) from %s: %v", len(loaded), *dir, loaded)
	}
	if reg.Len() == 0 && *dir == "" {
		logger.Fatal("nothing to serve: pass -release name=path or -dir (releases can also be POSTed at runtime)")
	}

	api := &serve.API{
		Registry:     reg,
		WatchDir:     *dir,
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d releases)", *addr, reg.Len())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (grace %s)", *shutdownTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("shutdown: %v", err)
	}
	logger.Print("bye")
}
