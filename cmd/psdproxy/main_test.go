package main

import (
	"bytes"
	"log"
	"net"
	"strings"
	"testing"
)

// TestStartupErrors pins the non-zero-exit contract: a proxy with no
// backends, only-garbage backends, or an unbindable address must fail
// loudly from run, not half-start. (The full fleet behavior — failover,
// rollouts, metrics — is exercised in internal/cluster's fault suite
// and scripts/fleet_e2e.sh; this test is only about startup.)
func TestStartupErrors(t *testing.T) {
	busy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()

	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "no backends",
			args: nil,
			want: "no backends",
		},
		{
			name: "only empty backend URLs",
			args: []string{"-backend", "/"},
			want: "no usable backend",
		},
		{
			name: "bind failure",
			args: []string{"-backend", "http://127.0.0.1:1", "-addr", busy.Addr().String()},
			want: "bind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var logs bytes.Buffer
			logger := log.New(&logs, "", 0)
			err := run(tc.args, logger)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}
