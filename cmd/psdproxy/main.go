// Command psdproxy is the fleet front-end over psdserve replicas: it
// routes each /v1/releases/{name}/* request to the replica owning
// {name} on a consistent-hash ring, actively health-checks the fleet,
// and fails over with bounded retries when a replica dies mid-request.
// Because a release's noise is fixed at publish time, every replica
// serving the same artifact answers bit-identically — so failover never
// changes an answer, only who computes it.
//
// Usage:
//
//	psdproxy -addr :8090 \
//	    -backend http://replica1:8080 \
//	    -backend http://replica2:8080 \
//	    -backend http://replica3:8080
//
// Endpoints:
//
//	GET  /healthz          proxy liveness
//	GET  /readyz           503 until at least one backend is routable
//	GET  /stats            fleet counters + per-backend state (JSON)
//	GET  /metrics          Prometheus text exposition
//	GET  /v1/backends      per-backend health/breaker/counters
//	POST /v1/rollout       manifest rollout across the fleet, with canary
//	                       gating and automatic rollback
//	     /v1/releases...   query traffic, routed with failover
//
// Mutating individual replicas through the proxy is refused (405):
// fleet state changes go through manifest rollouts so replicas never
// diverge. Like psdserve, the proxy drains gracefully on SIGINT/SIGTERM
// (readiness flips first, then the listener closes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"psd/internal/cluster"
)

// multiFlag accumulates repeated -backend flags.
type multiFlag []string

func (v *multiFlag) String() string { return fmt.Sprint(*v) }

func (v *multiFlag) Set(s string) error {
	if s == "" {
		return errors.New("empty backend URL")
	}
	*v = append(*v, s)
	return nil
}

func main() {
	logger := log.New(os.Stderr, "psdproxy: ", log.LstdFlags)
	if err := run(os.Args[1:], logger); err != nil {
		logger.Fatal(err)
	}
}

// run is the whole proxy lifecycle, separated from main so startup
// failures are testable (mirrors cmd/psdserve).
func run(args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("psdproxy", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	vnodes := fs.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per backend on the routing ring")
	retries := fs.Int("retries", cluster.DefaultRetries, "retry attempts after the first, each on the next ring replica")
	retryBase := fs.Duration("retry-base", cluster.DefaultRetryBase, "backoff base: retry i sleeps a full-jitter draw from [0, base<<(i-1)]")
	attemptTimeout := fs.Duration("attempt-timeout", 10*time.Second, "deadline for each backend attempt (0 disables)")
	requestTimeout := fs.Duration("request-timeout", 0, "deadline for a whole proxied request including retries (0 disables)")
	probeInterval := fs.Duration("probe-interval", cluster.DefaultProbeInterval, "health probe period")
	probeTimeout := fs.Duration("probe-timeout", cluster.DefaultProbeTimeout, "health probe deadline")
	downAfter := fs.Int("down-after", cluster.DefaultDownAfter, "consecutive probe failures before a backend is down")
	upAfter := fs.Int("up-after", cluster.DefaultUpAfter, "consecutive probe successes before a down backend recovers")
	breakerFailures := fs.Int("breaker-failures", cluster.DefaultBreakerFailures, "consecutive data-path failures that open a backend's circuit breaker")
	breakerOpenFor := fs.Duration("breaker-open", cluster.DefaultBreakerOpenFor, "how long an open breaker refuses before a half-open probe")
	drainDelay := fs.Duration("drain-delay", 0, "pause between flipping /readyz to 503 and closing the listener")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	var backends multiFlag
	fs.Var(&backends, "backend", "psdserve replica base URL (repeatable; need at least one)")
	fs.Parse(args)

	if len(backends) == 0 {
		return errors.New("no backends: pass -backend http://host:port at least once")
	}

	p := cluster.NewProxy(backends, *vnodes)
	if len(p.BackendList()) == 0 {
		return fmt.Errorf("no usable backend URLs in %v", backends)
	}
	p.Retries = *retries
	if *retries == 0 {
		p.Retries = -1 // flag 0 means "no retries", not "default"
	}
	p.RetryBase = *retryBase
	p.AttemptTimeout = *attemptTimeout
	p.RequestTimeout = *requestTimeout
	p.Logger = logger
	for _, b := range p.BackendList() {
		b.Breaker.FailureThreshold = *breakerFailures
		b.Breaker.OpenFor = *breakerOpenFor
	}

	health := &cluster.Health{
		Backends:  p.BackendList(),
		Interval:  *probeInterval,
		Timeout:   *probeTimeout,
		DownAfter: *downAfter,
		UpAfter:   *upAfter,
		Logger:    logger,
	}

	srv := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Bind before declaring readiness, like psdserve.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", *addr, err)
	}
	p.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	healthCtx, healthStop := context.WithCancel(context.Background())
	defer healthStop()
	go health.Run(healthCtx)

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s, %d backend(s): %v",
			ln.Addr(), len(p.BackendList()), p.Ring().Members())
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()

	p.SetReady(false)
	logger.Printf("draining: /readyz now 503 (delay %s, grace %s)", *drainDelay, *shutdownTimeout)
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	healthStop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Print("bye")
	return nil
}
