// Command datagen emits synthetic point datasets as CSV (one "x,y" row per
// point), for use with psdtool or external analysis — or, with -release,
// builds a private release from the generated points directly and writes
// the artifact, which is how multi-hundred-MB scale-test releases are
// produced without a CSV detour.
//
// Usage:
//
//	datagen -kind road -n 100000 -seed 1 > points.csv
//
//	datagen -kind road -n 1630000 -seed 1 \
//	        -release roads.bin -height 12 -eps 0.5
//
// Kinds:
//
//	road     TIGER-like skewed road-intersection data over the paper's
//	         western-US bounding box (the default)
//	uniform  uniform points over the unit square
//	gauss    5 Gaussian clusters over the unit square
//
// -release writes the artifact crash-safely (temp file + atomic rename) in
// the format the extension selects: ".bin" is binary — the mmap-ready
// record-major v3 by default, v2 with -v3=false — anything else JSON. An
// h=12 release is ~22.4M nodes, ~900MB as v3; psdserve opens it zero-copy.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"psd"
	"psd/internal/atomicfile"
	"psd/internal/geom"
	"psd/internal/workload"
)

func main() {
	kind := flag.String("kind", "road", "dataset kind: road, uniform, gauss")
	n := flag.Int("n", 100000, "number of points")
	seed := flag.Int64("seed", 1, "generator seed")
	release := flag.String("release", "", "build a release from the points and write it here instead of emitting CSV (.bin = binary, else JSON)")
	relKind := flag.String("release-kind", "quadtree",
		"decomposition kind for -release: quadtree, kd, kd-hybrid, hilbert-r, kd-cell, kd-noisymean, privtree")
	height := flag.Int("height", 10, "tree height for -release (12 yields a multi-hundred-MB artifact)")
	eps := flag.Float64("eps", 0.5, "privacy budget for -release")
	v3 := flag.Bool("v3", true, "write .bin -release artifacts in the mmap-ready binary v3 format (false = v2)")
	flag.Parse()

	var ds workload.Dataset
	unit := geom.NewRect(0, 0, 1, 1)
	switch *kind {
	case "road":
		ds = workload.RoadNetwork(workload.RoadNetworkConfig{N: *n, Seed: *seed})
	case "uniform":
		ds = workload.Uniform(*n, unit, *seed)
	case "gauss":
		ds = workload.GaussianClusters(*n, 5, 0.05, unit, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *release != "" {
		if err := emitRelease(ds, *release, *relKind, *height, *eps, *seed, *v3); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "# %s domain=%v n=%d seed=%d\n", ds.Name, ds.Domain, len(ds.Points), *seed)
	for _, p := range ds.Points {
		fmt.Fprintf(w, "%g,%g\n", p.X, p.Y)
	}
	// A deferred Flush would drop its error and silently truncate the
	// dataset when stdout is a nearly-full pipe or disk.
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// emitRelease builds a decomposition over the dataset and publishes the
// release artifact crash-safely at path. This is the scale-up path: the
// points never touch disk, so an h=12 (22.4M-node) artifact costs one
// build plus one sequential write.
func emitRelease(ds workload.Dataset, path, kindName string, height int, eps float64, seed int64, v3 bool) error {
	kinds := map[string]psd.Kind{
		"quadtree": psd.QuadtreeKind, "kd": psd.KDTree, "kd-hybrid": psd.KDHybrid,
		"hilbert-r": psd.HilbertRTree, "kd-cell": psd.KDCellTree,
		"kd-noisymean": psd.KDNoisyMeanTree, "privtree": psd.PrivTreeKind,
	}
	kind, ok := kinds[kindName]
	if !ok {
		return fmt.Errorf("unknown release kind %q", kindName)
	}
	tree, err := psd.Build(ds.Points, ds.Domain, psd.Options{
		Kind: kind, Height: height, Epsilon: eps, Seed: seed,
	})
	if err != nil {
		return err
	}
	write := tree.WriteRelease
	format := "json"
	if strings.EqualFold(filepath.Ext(path), ".bin") {
		write, format = tree.WriteBinaryRelease, "binary"
		if v3 {
			write, format = tree.WriteBinaryV3Release, "binary-v3"
		}
	}
	n, err := atomicfile.Write(path, func(w io.Writer) error { return write(w) })
	if err != nil {
		return err
	}
	fmt.Printf("# %s h=%d eps=%g over %d points (%s), built in %s: wrote %s release to %s (%d bytes)\n",
		tree.Kind(), tree.Height(), tree.PrivacyCost(), len(ds.Points), ds.Name,
		tree.BuildTime(), format, path, n)
	return nil
}
