// Command datagen emits synthetic point datasets as CSV (one "x,y" row per
// point), for use with psdtool or external analysis.
//
// Usage:
//
//	datagen -kind road -n 100000 -seed 1 > points.csv
//
// Kinds:
//
//	road     TIGER-like skewed road-intersection data over the paper's
//	         western-US bounding box (the default)
//	uniform  uniform points over the unit square
//	gauss    5 Gaussian clusters over the unit square
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"psd/internal/geom"
	"psd/internal/workload"
)

func main() {
	kind := flag.String("kind", "road", "dataset kind: road, uniform, gauss")
	n := flag.Int("n", 100000, "number of points")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	var ds workload.Dataset
	unit := geom.NewRect(0, 0, 1, 1)
	switch *kind {
	case "road":
		ds = workload.RoadNetwork(workload.RoadNetworkConfig{N: *n, Seed: *seed})
	case "uniform":
		ds = workload.Uniform(*n, unit, *seed)
	case "gauss":
		ds = workload.GaussianClusters(*n, 5, 0.05, unit, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %s domain=%v n=%d seed=%d\n", ds.Name, ds.Domain, len(ds.Points), *seed)
	for _, p := range ds.Points {
		fmt.Fprintf(w, "%g,%g\n", p.X, p.Y)
	}
}
