// Command psdlint is the project's static-analysis gate: a multichecker of
// custom analyzers that mechanically enforce the invariants the paper's
// guarantees rest on — determinism of release bytes, fsync discipline on
// durable artifacts, confinement of unsafe to the audited mmap seam, checked
// Close/Sync errors on durable writers, and cancellation polling in
// traversals.
//
// Two modes:
//
//	psdlint ./...                          # standalone, from the module root
//	go vet -vettool=$(which psdlint) ./... # as a vet tool (cmd/go protocol)
//
// Both exit nonzero on findings. Exceptions are per-line and must be
// justified: //lint:allow <analyzer> -- <why>.
package main

import (
	"flag"
	"fmt"
	"os"

	"psd/internal/analysis"
	"psd/internal/analysis/closecheck"
	"psd/internal/analysis/ctxpoll"
	"psd/internal/analysis/determinism"
	"psd/internal/analysis/fsyncdiscipline"
	"psd/internal/analysis/unsafeconfine"
)

var analyzers = []*analysis.Analyzer{
	closecheck.Analyzer,
	ctxpoll.Analyzer,
	determinism.Analyzer,
	fsyncdiscipline.Analyzer,
	unsafeconfine.Analyzer,
}

func main() {
	args := os.Args[1:]
	if analysis.IsVetInvocation(args) {
		analysis.VetMain("psdlint", args, analyzers)
		return
	}

	fs := flag.NewFlagSet("psdlint", flag.ExitOnError)
	dir := fs.String("C", ".", "run as if started in this directory (module root)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: psdlint [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nSilence a justified exception with: //lint:allow <analyzer> -- <why>\n")
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	n, err := analysis.RunStandalone(*dir, fs.Args(), analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdlint: %v\n", err)
		os.Exit(1)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "psdlint: %d finding(s)\n", n)
		os.Exit(2)
	}
}
