package main

// Integration tests that drive the real binary through both of its modes:
// standalone (psdlint ./...) and the cmd/go vettool protocol
// (go vet -vettool=psdlint ./...). The fixture module lives under a temp
// dir with its own go.mod, so the test exercises the same export-data
// loading path CI uses, against a module that is NOT psd — proving the
// path-independent analyzers (unsafeconfine) still bite.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the psdlint binary once per test process.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "psdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build psdlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a tiny module in a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyMod = `module example.com/dirty

go 1.21
`

// dirtySrc trips unsafeconfine: an unsafe import outside the audited seam.
const dirtySrc = `package dirty

import "unsafe"

func Alias(b []byte) *byte {
	return (*byte)(unsafe.Pointer(&b[0]))
}
`

const cleanMod = `module example.com/clean

go 1.21
`

const cleanSrc = `package clean

func Add(a, b int) int { return a + b }
`

func TestStandaloneFindsViolation(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{"go.mod": dirtyMod, "dirty.go": dirtySrc})

	cmd := exec.Command(bin, "-C", dir, "./...")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unsafeconfine") {
		t.Errorf("output does not name the analyzer:\n%s", out)
	}
}

func TestStandaloneCleanModule(t *testing.T) {
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{"go.mod": cleanMod, "clean.go": cleanSrc})

	cmd := exec.Command(bin, "-C", dir, "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("want exit 0 on a clean module, got %v\n%s", err, out)
	}
}

func TestVettoolProtocol(t *testing.T) {
	bin := buildLint(t)

	t.Run("dirty", func(t *testing.T) {
		dir := writeModule(t, map[string]string{"go.mod": dirtyMod, "dirty.go": dirtySrc})
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet should fail on the dirty module\n%s", out)
		}
		if !strings.Contains(string(out), "outside the audited mmap seam") {
			t.Errorf("vet output missing the unsafeconfine diagnostic:\n%s", out)
		}
	})

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{"go.mod": cleanMod, "clean.go": cleanSrc})
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet on a clean module: %v\n%s", err, out)
		}
	})
}

func TestVersionHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	// cmd/go parses this line strictly: name, "version", semver-ish, and for
	// devel builds a trailing buildID=… field used as the cache key.
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("malformed -V=full line: %q", out)
	}
	if strings.Contains(fields[2], "devel") && !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("devel version line missing buildID field: %q", out)
	}
}
