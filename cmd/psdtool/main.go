// Command psdtool builds a private spatial decomposition from a CSV point
// file and answers range queries, dumps the released regions, or writes the
// release artifact; its convert subcommand translates artifacts between the
// JSON and binary release formats.
//
// Usage:
//
//	psdtool -data points.csv -kind kd-hybrid -height 6 -eps 0.5 \
//	        -query "-123,46,-120,48" -query "-110,32,-104,36"
//
//	psdtool -data points.csv -kind quadtree -height 5 -eps 1 -regions
//
//	psdtool -data points.csv -kind quadtree -height 8 -eps 0.5 -out roads.bin
//
//	psdtool convert -in release.json -out release.bin
//
// The input CSV has one "x,y" row per point; lines starting with '#' are
// skipped. The domain defaults to the data's bounding box (see the
// BoundingBox caveat in the library docs: fixing a public domain is the
// right call for a real release) and can be overridden with -domain.
//
// -out and convert's -out choose the release encoding by file extension:
// ".bin" writes the binary columnar format v2 (compact, and decoded by
// psdserve straight into its serving columns), anything else writes the
// versioned JSON format 1. Adding -v3 upgrades a ".bin" output to the
// record-major binary format v3, which psdserve opens zero-copy via mmap —
// the right encoding for large artifacts. convert reads any format (JSON,
// v2, v3), sniffing the leading bytes, so every direction — including
// v2 -> v3 and back — is the same command line; v2 read support is
// permanent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"psd"
	"psd/internal/atomicfile"
)

// rectFlag accumulates repeated -query flags.
type rectFlag []psd.Rect

func (r *rectFlag) String() string { return fmt.Sprint(*r) }

func (r *rectFlag) Set(s string) error {
	rect, err := parseRect(s)
	if err != nil {
		return err
	}
	*r = append(*r, rect)
	return nil
}

func parseRect(s string) (psd.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return psd.Rect{}, fmt.Errorf("want x1,y1,x2,y2, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return psd.Rect{}, fmt.Errorf("bad coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	if v[2] < v[0] {
		v[0], v[2] = v[2], v[0]
	}
	if v[3] < v[1] {
		v[1], v[3] = v[3], v[1]
	}
	return psd.NewRect(v[0], v[1], v[2], v[3]), nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		runConvert(os.Args[2:])
		return
	}
	data := flag.String("data", "", "CSV point file (required)")
	kindName := flag.String("kind", "quadtree",
		"tree kind: quadtree, kd, kd-hybrid, hilbert-r, kd-cell, kd-noisymean, privtree")
	theta := flag.Float64("theta", 0, "privtree split threshold θ (privtree only)")
	height := flag.Int("height", 6, "tree height")
	eps := flag.Float64("eps", 0.5, "privacy budget")
	seed := flag.Int64("seed", 1, "build seed")
	domainSpec := flag.String("domain", "", "domain as x1,y1,x2,y2 (default: data bounding box)")
	regions := flag.Bool("regions", false, "dump released regions as CSV")
	out := flag.String("out", "", "write the release artifact to this file (.bin = binary v2, else JSON)")
	v3 := flag.Bool("v3", false, "write .bin artifacts in the mmap-ready binary format v3 instead of v2")
	var queries rectFlag
	flag.Var(&queries, "query", "range query as x1,y1,x2,y2 (repeatable)")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "psdtool: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	points, err := readPoints(*data)
	if err != nil {
		fatal(err)
	}
	if len(points) == 0 {
		fatal(fmt.Errorf("no points in %s", *data))
	}

	kinds := map[string]psd.Kind{
		"quadtree": psd.QuadtreeKind, "kd": psd.KDTree, "kd-hybrid": psd.KDHybrid,
		"hilbert-r": psd.HilbertRTree, "kd-cell": psd.KDCellTree,
		"kd-noisymean": psd.KDNoisyMeanTree, "privtree": psd.PrivTreeKind,
	}
	kind, ok := kinds[*kindName]
	if !ok {
		fatal(fmt.Errorf("unknown kind %q", *kindName))
	}

	domain := psd.BoundingBox(points)
	if *domainSpec != "" {
		domain, err = parseRect(*domainSpec)
		if err != nil {
			fatal(err)
		}
	}

	if *theta != 0 && kind != psd.PrivTreeKind {
		fatal(fmt.Errorf("-theta applies only to -kind privtree"))
	}
	tree, err := psd.Build(points, domain, psd.Options{
		Kind: kind, Height: *height, Epsilon: *eps, Seed: *seed, Theta: *theta,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s h=%d eps=%g over %d points, built in %s, %d regions\n",
		tree.Kind(), tree.Height(), tree.PrivacyCost(), len(points),
		tree.BuildTime(), tree.NumRegions())

	for _, q := range queries {
		fmt.Printf("count %v = %.1f\n", q, tree.Count(q))
	}
	if *out != "" {
		n, err := writeRelease(tree, *out, *v3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s release to %s (%d bytes)\n", formatName(*out, *v3), *out, n)
	}
	if *regions {
		rects, counts := tree.Regions()
		fmt.Println("lox,loy,hix,hiy,count")
		for i, r := range rects {
			fmt.Printf("%g,%g,%g,%g,%.2f\n", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y, counts[i])
		}
	}
}

func readPoints(path string) ([]psd.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []psd.Point
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		parts := strings.Split(txt, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want x,y", path, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		pts = append(pts, psd.Point{X: x, Y: y})
	}
	return pts, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psdtool:", err)
	os.Exit(1)
}

// formatOf names the release encoding a path's extension selects.
func formatOf(path string) string {
	if strings.EqualFold(filepath.Ext(path), ".bin") {
		return "binary"
	}
	return "json"
}

// formatName is formatOf plus the binary version the -v3 flag selects.
func formatName(path string, v3 bool) string {
	f := formatOf(path)
	if f == "binary" && v3 {
		return "binary-v3"
	}
	return f
}

// writeArtifact publishes write's output at path crash-safely — temp file,
// fsync, atomic rename — returning the byte count. A psdserve watch-dir
// rescan (or any reader) racing the write sees either the previous complete
// artifact or the new one, never a prefix.
func writeArtifact(path string, write func(io.Writer) error) (int64, error) {
	return atomicfile.Write(path, write)
}

// writeRelease serializes the tree's release to path in the
// extension-selected format, returning the byte count.
func writeRelease(tree *psd.Tree, path string, v3 bool) (int64, error) {
	if formatOf(path) == "binary" {
		if v3 {
			return writeArtifact(path, tree.WriteBinaryV3Release)
		}
		return writeArtifact(path, tree.WriteBinaryRelease)
	}
	return writeArtifact(path, tree.WriteRelease)
}

// runConvert implements `psdtool convert`: translate a release artifact
// between the JSON and binary encodings. The input format is sniffed from
// the leading bytes; the output format follows the -out extension. The two
// encodings carry the same artifact, so converting is lossless: a release
// round-tripped either way re-serializes byte-identically.
func runConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input release artifact, JSON or binary v2/v3 (required)")
	out := fs.String("out", "", "output path; .bin writes binary v2 (v3 with -v3), anything else JSON (required)")
	v3 := fs.Bool("v3", false, "write .bin output in the mmap-ready binary format v3 instead of v2")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: psdtool convert -in release.json [-v3] -out release.bin")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *in == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	slab, n, err := convert(*in, *out, *v3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# converted %s (%s h=%d eps=%g, %d regions) -> %s %s (%d bytes)\n",
		*in, slab.Kind(), slab.Height(), slab.PrivacyCost(), slab.NumRegions(),
		formatName(*out, *v3), *out, n)
	slab.Close()
}

// convert opens the release at in (any format, sniffed; a v3 artifact is
// mmap'd and fully verified rather than decoded) and writes it to out in
// the selected format, returning the opened slab and the output size. The
// three encodings carry the same artifact, so every conversion is lossless
// and round trips re-serialize byte-identically.
func convert(in, out string, v3 bool) (*psd.Slab, int64, error) {
	slab, err := psd.OpenSlabFile(in)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", in, err)
	}
	// A zero-copy open skips the body checks a decode runs inline; verify
	// before re-encoding so a corrupt input fails loudly instead of being
	// laundered into a fresh checksummed artifact.
	if err := slab.Verify(); err != nil {
		slab.Close()
		return nil, 0, fmt.Errorf("%s: %w", in, err)
	}
	write := slab.WriteRelease
	if formatOf(out) == "binary" {
		write = slab.WriteBinaryRelease
		if v3 {
			write = slab.WriteBinaryV3Release
		}
	}
	n, err := writeArtifact(out, write)
	if err != nil {
		slab.Close()
		return nil, 0, err
	}
	return slab, n, nil
}
