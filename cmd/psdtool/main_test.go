package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"psd"
)

func TestParseRect(t *testing.T) {
	r, err := parseRect("1,2,3,4")
	if err != nil {
		t.Fatal(err)
	}
	if r != psd.NewRect(1, 2, 3, 4) {
		t.Errorf("parseRect = %v", r)
	}
	// Swapped corners normalize.
	r, err = parseRect("3,4,1,2")
	if err != nil {
		t.Fatal(err)
	}
	if r != psd.NewRect(1, 2, 3, 4) {
		t.Errorf("normalized parseRect = %v", r)
	}
	// Whitespace tolerated.
	if _, err := parseRect(" 1 , 2 , 3 , 4 "); err != nil {
		t.Errorf("whitespace should parse: %v", err)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5", "a,b,c,d"} {
		if _, err := parseRect(bad); err == nil {
			t.Errorf("parseRect(%q) should error", bad)
		}
	}
}

func TestRectFlagAccumulates(t *testing.T) {
	var rf rectFlag
	if err := rf.Set("0,0,1,1"); err != nil {
		t.Fatal(err)
	}
	if err := rf.Set("2,2,3,3"); err != nil {
		t.Fatal(err)
	}
	if len(rf) != 2 {
		t.Errorf("len = %d, want 2", len(rf))
	}
	if rf.String() == "" {
		t.Error("String should format")
	}
	if err := rf.Set("junk"); err == nil {
		t.Error("bad rect should error")
	}
}

func TestFormatOf(t *testing.T) {
	for path, want := range map[string]string{
		"x.bin": "binary", "x.BIN": "binary", "dir/y.bin": "binary",
		"x.json": "json", "x": "json", "x.bin.json": "json",
	} {
		if got := formatOf(path); got != want {
			t.Errorf("formatOf(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestConvertRoundTrip drives the convert subcommand's core both ways
// against the committed golden quadtree fixture: json -> bin -> json must
// reproduce the input byte-identically, and the intermediate binary must
// answer queries like the original.
func TestConvertRoundTrip(t *testing.T) {
	src := filepath.Join("..", "..", "testdata", "release_quadtree.json")
	dir := t.TempDir()
	binPath := filepath.Join(dir, "r.bin")
	jsonPath := filepath.Join(dir, "r.json")

	slab1, n, err := convert(src, binPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("convert wrote %d bytes", n)
	}
	slab2, _, err := convert(binPath, jsonPath, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("json -> bin -> json round trip is not byte-identical")
	}
	for _, q := range []psd.Rect{
		psd.NewRect(0, 0, 100, 100),
		psd.NewRect(25, 25, 75, 75),
		psd.NewRect(47, 47, 53, 53),
	} {
		if a, b := slab1.Count(q), slab2.Count(q); a != b {
			t.Errorf("converted releases disagree on %v: %v vs %v", q, a, b)
		}
	}

	if _, _, err := convert(filepath.Join(dir, "missing.json"), binPath, false); err == nil {
		t.Error("convert of a missing file should error")
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := convert(junk, binPath, false); err == nil {
		t.Error("convert of a junk artifact should error")
	}
}

// TestConvertV3RoundTrip drives the converter through the mmap-ready v3
// encoding: json -> v3 -> json must reproduce the input byte-identically
// (the v3 leg is opened zero-copy by OpenSlabFile), and converting the
// same artifact to v2 and v3 must yield slabs that answer identically.
func TestConvertV3RoundTrip(t *testing.T) {
	src := filepath.Join("..", "..", "testdata", "release_quadtree.json")
	dir := t.TempDir()
	v3Path := filepath.Join(dir, "r3.bin")
	v2Path := filepath.Join(dir, "r2.bin")
	jsonPath := filepath.Join(dir, "r.json")

	slabV3, n, err := convert(src, v3Path, true)
	if err != nil {
		t.Fatal(err)
	}
	if n%64 != 16 { // sections are 64-aligned; the 16-byte footer ends the file
		t.Errorf("v3 artifact is %d bytes; want 64-aligned body + 16-byte footer", n)
	}
	slabV2, _, err := convert(src, v2Path, false)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := convert(v3Path, jsonPath, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("json -> v3 -> json round trip is not byte-identical")
	}
	for _, q := range []psd.Rect{
		psd.NewRect(0, 0, 100, 100),
		psd.NewRect(25, 25, 75, 75),
		psd.NewRect(47, 47, 53, 53),
	} {
		if a, b := slabV2.Count(q), slabV3.Count(q); a != b {
			t.Errorf("v2 and v3 slabs disagree on %v: %v vs %v", q, a, b)
		}
		if a, b := slabV3.Count(q), back.Count(q); a != b {
			t.Errorf("v3 and round-tripped slabs disagree on %v: %v vs %v", q, a, b)
		}
	}
	if err := slabV3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConvertPrivTreeGolden runs the converter over the adaptive-kind
// golden fixture: the committed JSON and binary artifacts must be exact
// conversions of each other, and the reopened slab keeps the partial
// publication (pruned adaptive leaves reported as regions).
func TestConvertPrivTreeGolden(t *testing.T) {
	srcJSON := filepath.Join("..", "..", "testdata", "release_privtree.json")
	srcBin := filepath.Join("..", "..", "testdata", "release_privtree.bin")
	dir := t.TempDir()

	slab, _, err := convert(srcJSON, filepath.Join(dir, "p.bin"), false)
	if err != nil {
		t.Fatal(err)
	}
	if slab.Kind() != "privtree" {
		t.Fatalf("kind %q", slab.Kind())
	}
	want, err := os.ReadFile(srcBin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "p.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("converted binary differs from the committed privtree fixture")
	}
	back, _, err := convert(srcBin, filepath.Join(dir, "p.json"), false)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := slab.NumRegions(), back.NumRegions(); a != b || a == 0 {
		t.Errorf("regions %d vs %d", a, b)
	}
	wantJSON, err := os.ReadFile(srcJSON)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := os.ReadFile(filepath.Join(dir, "p.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Error("converted JSON differs from the committed privtree fixture")
	}
}

// TestBuildPrivTreeFromCSV drives the tool's build path end-to-end for the
// adaptive kind: skewed CSV points in, a binary release out, reopened and
// queried. This is the datagen -> psdtool -> psdserve artifact shape.
func TestBuildPrivTreeFromCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "pts.csv")
	f, err := os.Create(csv)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic skewed cloud: most mass near the origin.
	s := uint64(9)
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64((z^(z>>31))>>11) / float64(1<<53)
	}
	for i := 0; i < 4000; i++ {
		x, y := next()*100, next()*100
		if i%2 == 0 {
			x, y = x*0.1, y*0.1
		}
		fmt.Fprintf(f, "%g,%g\n", x, y)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	pts, err := readPoints(csv)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := psd.Build(pts, psd.NewRect(0, 0, 100, 100), psd.Options{
		Kind: psd.PrivTreeKind, MaxDepth: 5, Epsilon: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "roads.bin")
	if _, err := writeRelease(tree, out, false); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	slab, err := psd.OpenSlab(g)
	g.Close()
	if err != nil {
		t.Fatal(err)
	}
	q := psd.NewRect(0, 0, 10, 10)
	if got, want := slab.Count(q), tree.Count(q); got != want {
		t.Errorf("reopened count %v, want %v", got, want)
	}
}

// TestWriteRelease pins the -out flag's writer: both encodings open again
// and answer like the built tree.
func TestWriteRelease(t *testing.T) {
	dom := psd.NewRect(0, 0, 10, 10)
	pts := []psd.Point{{X: 1, Y: 1}, {X: 2, Y: 7}, {X: 8, Y: 3}, {X: 9, Y: 9}}
	tree, err := psd.Build(pts, dom, psd.Options{Height: 2, Epsilon: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"r.json", "r.bin"} {
		path := filepath.Join(dir, name)
		n, err := writeRelease(tree, path, false)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("%s: wrote %d bytes", name, n)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		slab, err := psd.OpenSlab(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q := psd.NewRect(0, 0, 5, 5)
		if got, want := slab.Count(q), tree.Count(q); got != want {
			t.Errorf("%s: reopened count %v, want %v", name, got, want)
		}
	}
}

func TestReadPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	content := "# header comment\n1.5,2.5\n\n -3 , 4 \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("read %d points, want 2", len(pts))
	}
	if pts[0] != (psd.Point{X: 1.5, Y: 2.5}) || pts[1] != (psd.Point{X: -3, Y: 4}) {
		t.Errorf("points = %v", pts)
	}

	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad); err == nil {
		t.Error("malformed row should error")
	}
	bad2 := filepath.Join(dir, "bad2.csv")
	if err := os.WriteFile(bad2, []byte("x,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad2); err == nil {
		t.Error("non-numeric coordinate should error")
	}
	if _, err := readPoints(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
