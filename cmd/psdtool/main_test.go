package main

import (
	"os"
	"path/filepath"
	"testing"

	"psd"
)

func TestParseRect(t *testing.T) {
	r, err := parseRect("1,2,3,4")
	if err != nil {
		t.Fatal(err)
	}
	if r != psd.NewRect(1, 2, 3, 4) {
		t.Errorf("parseRect = %v", r)
	}
	// Swapped corners normalize.
	r, err = parseRect("3,4,1,2")
	if err != nil {
		t.Fatal(err)
	}
	if r != psd.NewRect(1, 2, 3, 4) {
		t.Errorf("normalized parseRect = %v", r)
	}
	// Whitespace tolerated.
	if _, err := parseRect(" 1 , 2 , 3 , 4 "); err != nil {
		t.Errorf("whitespace should parse: %v", err)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5", "a,b,c,d"} {
		if _, err := parseRect(bad); err == nil {
			t.Errorf("parseRect(%q) should error", bad)
		}
	}
}

func TestRectFlagAccumulates(t *testing.T) {
	var rf rectFlag
	if err := rf.Set("0,0,1,1"); err != nil {
		t.Fatal(err)
	}
	if err := rf.Set("2,2,3,3"); err != nil {
		t.Fatal(err)
	}
	if len(rf) != 2 {
		t.Errorf("len = %d, want 2", len(rf))
	}
	if rf.String() == "" {
		t.Error("String should format")
	}
	if err := rf.Set("junk"); err == nil {
		t.Error("bad rect should error")
	}
}

func TestReadPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	content := "# header comment\n1.5,2.5\n\n -3 , 4 \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("read %d points, want 2", len(pts))
	}
	if pts[0] != (psd.Point{X: 1.5, Y: 2.5}) || pts[1] != (psd.Point{X: -3, Y: 4}) {
		t.Errorf("points = %v", pts)
	}

	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad); err == nil {
		t.Error("malformed row should error")
	}
	bad2 := filepath.Join(dir, "bad2.csv")
	if err := os.WriteFile(bad2, []byte("x,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPoints(bad2); err == nil {
		t.Error("non-numeric coordinate should error")
	}
	if _, err := readPoints(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
