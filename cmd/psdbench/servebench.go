package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"psd"
	"psd/internal/eval"
	"psd/internal/serve"
	"psd/internal/workload"
)

// serveReport is the machine-readable serving-performance snapshot
// `psdbench serve-bench` writes (BENCH_serve.json by default): end-to-end
// HTTP queries/sec through cmd/psdserve's handler stack, with and without
// cache locality, so the serving hot path's trajectory is tracked across
// commits alongside the build/query numbers in BENCH_build.json.
type serveReport struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Scale     string `json:"scale"`
	// Release describes the served artifact.
	ReleaseKind   string     `json:"release_kind"`
	ReleaseHeight int        `json:"release_height"`
	ReleaseBytes  int        `json:"release_bytes"`
	UnixTime      int64      `json:"unix_time"`
	Rows          []serveRow `json:"rows"`
}

// serveRow is one load-generation configuration.
type serveRow struct {
	// Name is "<mode>/clients=<c>" ("single" = one rect per request,
	// "batch<n>" = n rects per request).
	Name string `json:"name"`
	// Clients is the number of concurrent HTTP clients.
	Clients int `json:"clients"`
	// Requests and Queries are the totals issued (queries = rects answered).
	Requests int `json:"requests"`
	Queries  int `json:"queries"`
	// DistinctRects is the query-pool size; repetition beyond it is what the
	// cache can exploit.
	DistinctRects int `json:"distinct_rects"`
	// Seconds is the wall time of the run.
	Seconds float64 `json:"seconds"`
	// QueriesPerSec is the end-to-end throughput (rects answered / wall s).
	QueriesPerSec float64 `json:"queries_per_sec"`
	// CacheHitRate is the server-reported hit rate for this run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MeanLatencyNs is the server-side mean request latency.
	MeanLatencyNs int64 `json:"mean_latency_ns"`
}

// runServeBench builds a release at the eval scale, serves it through the
// real handler stack on a loopback listener, and measures throughput under
// concurrent single-query and batch loads. Each mode runs twice against a
// fresh registry: a cold pass sized so most queries miss, and a hot pass
// re-playing the same pool so the cache dominates.
func runServeBench(env *eval.Env, scale eval.Scale, outPath string) error {
	tree, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	var artifact bytes.Buffer
	if err := tree.WriteRelease(&artifact); err != nil {
		return err
	}

	// Query pool: the eval workload's shapes, cycled. Load runs issue more
	// requests than the pool holds, so repetition (and thus cache locality)
	// is realistic rather than total.
	var pool [][4]float64
	for _, shape := range []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}} {
		qs, err := env.Queries(shape)
		if err != nil {
			return err
		}
		for _, r := range qs.Rects {
			pool = append(pool, [4]float64{r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y})
		}
	}

	report := serveReport{
		Schema:        1,
		GoVersion:     runtime.Version(),
		CPUs:          runtime.GOMAXPROCS(0),
		Scale:         scale.Name,
		ReleaseKind:   tree.Kind(),
		ReleaseHeight: tree.Height(),
		ReleaseBytes:  artifact.Len(),
		UnixTime:      time.Now().Unix(),
	}
	clients := runtime.GOMAXPROCS(0)

	modes := []struct {
		name      string
		batchSize int // 0 = single-query endpoint
		requests  int
	}{
		{"single-cold", 0, len(pool)},
		{"single-hot", 0, 4 * len(pool)},
		{"batch64-cold", 64, (len(pool) + 63) / 64},
		{"batch64-hot", 64, 4 * ((len(pool) + 63) / 64)},
	}
	for _, m := range modes {
		reg := serve.NewRegistry(1 << 16)
		if _, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes())); err != nil {
			return err
		}
		api := &serve.API{Registry: reg}
		srv := httptest.NewServer(api.Handler())

		if isHot(m.name) {
			// Warm pass: prime the cache with the whole pool.
			if err := replay(srv.URL, pool, m.batchSize, 1, (len(pool)+max(m.batchSize, 1)-1)/max(m.batchSize, 1)); err != nil {
				srv.Close()
				return err
			}
		}
		rel, _ := reg.Get("bench")
		before := rel.Stats()
		start := time.Now()
		if err := replay(srv.URL, pool, m.batchSize, clients, m.requests); err != nil {
			srv.Close()
			return err
		}
		elapsed := time.Since(start).Seconds()

		// Report the measured pass only: the server's counters are
		// cumulative and would otherwise dilute the hot rows with the
		// all-miss warm pass.
		after := rel.Stats()
		dQueries := after.Queries - before.Queries
		dHits := after.CacheHits - before.CacheHits
		dRequests := after.Requests - before.Requests
		var hitRate float64
		if dQueries > 0 {
			hitRate = float64(dHits) / float64(dQueries)
		}
		var meanNs int64
		if dRequests > 0 {
			totalBefore := before.MeanLatencyNs * int64(before.Requests)
			totalAfter := after.MeanLatencyNs * int64(after.Requests)
			meanNs = (totalAfter - totalBefore) / int64(dRequests)
		}
		queries := m.requests * max(m.batchSize, 1)
		row := serveRow{
			Name:          fmt.Sprintf("%s/clients=%d", m.name, clients),
			Clients:       clients,
			Requests:      m.requests,
			Queries:       queries,
			DistinctRects: len(pool),
			Seconds:       elapsed,
			QueriesPerSec: float64(queries) / elapsed,
			CacheHitRate:  hitRate,
			MeanLatencyNs: meanNs,
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("serve/%-24s %9d queries %8.2fs %12.0f queries/sec  hit-rate %.2f\n",
			row.Name, row.Queries, row.Seconds, row.QueriesPerSec, row.CacheHitRate)
		srv.Close()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s (%d rows)\n", outPath, len(report.Rows))
	return nil
}

func isHot(name string) bool { return len(name) > 4 && name[len(name)-4:] == "-hot" }

// replay issues n requests against the server from the given number of
// concurrent clients, cycling through the query pool. batchSize 0 uses the
// single-query endpoint; otherwise each request carries batchSize rects.
func replay(baseURL string, pool [][4]float64, batchSize, clients, n int) error {
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var err error
				if batchSize == 0 {
					r := pool[i%len(pool)]
					url := fmt.Sprintf("%s/v1/releases/bench/count?rect=%g,%g,%g,%g",
						baseURL, r[0], r[1], r[2], r[3])
					err = drainGet(client, url)
				} else {
					rects := make([][4]float64, batchSize)
					for j := range rects {
						rects[j] = pool[(i*batchSize+j)%len(pool)]
					}
					var body []byte
					body, err = json.Marshal(map[string]any{"rects": rects})
					if err == nil {
						err = drainPost(client, baseURL+"/v1/releases/bench/batch", body)
					}
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

func drainGet(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	return json.NewDecoder(resp.Body).Decode(&out)
}

func drainPost(c *http.Client, url string, body []byte) error {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	var out struct {
		Counts []float64 `json:"counts"`
	}
	return json.NewDecoder(resp.Body).Decode(&out)
}
