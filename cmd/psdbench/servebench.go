package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"psd"
	"psd/internal/atomicfile"
	"psd/internal/cluster"
	"psd/internal/eval"
	"psd/internal/serve"
	"psd/internal/workload"
)

// serveReport is the machine-readable serving-performance snapshot
// `psdbench serve-bench` writes (BENCH_serve.json by default): end-to-end
// HTTP queries/sec through cmd/psdserve's handler stack, with and without
// cache locality, so the serving hot path's trajectory is tracked across
// commits alongside the build/query numbers in BENCH_build.json.
type serveReport struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Scale     string `json:"scale"`
	// Release describes the served artifact.
	ReleaseKind   string     `json:"release_kind"`
	ReleaseHeight int        `json:"release_height"`
	ReleaseBytes  int        `json:"release_bytes"`
	UnixTime      int64      `json:"unix_time"`
	Rows          []serveRow `json:"rows"`
}

// serveRow is one load-generation configuration.
type serveRow struct {
	// Name is "<mode>/clients=<c>" ("single" = one rect per request,
	// "batch<n>" = n rects per request).
	Name string `json:"name"`
	// Clients is the number of concurrent HTTP clients.
	Clients int `json:"clients"`
	// Requests and Queries are the totals issued (queries = rects answered).
	Requests int `json:"requests"`
	Queries  int `json:"queries"`
	// DistinctRects is the query-pool size; repetition beyond it is what the
	// cache can exploit.
	DistinctRects int `json:"distinct_rects"`
	// Seconds is the wall time of the run.
	Seconds float64 `json:"seconds"`
	// QueriesPerSec is the end-to-end throughput (rects answered / wall s).
	QueriesPerSec float64 `json:"queries_per_sec"`
	// CacheHitRate is the server-reported hit rate for this run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// MeanLatencyNs is the server-side mean request latency.
	MeanLatencyNs int64 `json:"mean_latency_ns"`
	// Replicas is the fleet size for fleet rows (0 for direct-to-server
	// rows, which bypass the proxy entirely).
	Replicas int `json:"replicas,omitempty"`
	// P50LatencyNs / P99LatencyNs are client-observed request latency
	// percentiles (fleet rows only).
	P50LatencyNs int64 `json:"p50_latency_ns,omitempty"`
	P99LatencyNs int64 `json:"p99_latency_ns,omitempty"`
	// FailoverBlipNs is the worst client-observed request latency in a run
	// where one replica is hard-killed mid-sweep: the longest any single
	// query was delayed by failover (the query still succeeded — the run
	// errors out on any failed query).
	FailoverBlipNs int64 `json:"failover_blip_ns,omitempty"`
}

// runServeBench builds a release at the eval scale, serves it through the
// real handler stack on a loopback listener, and measures throughput under
// concurrent single-query and batch loads. Each mode runs twice against a
// fresh registry: a cold pass sized so most queries miss, and a hot pass
// re-playing the same pool so the cache dominates.
func runServeBench(env *eval.Env, scale eval.Scale, outPath string) error {
	tree, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	var artifact bytes.Buffer
	if err := tree.WriteRelease(&artifact); err != nil {
		return err
	}

	// Query pool: the eval workload's shapes, cycled. Load runs issue more
	// requests than the pool holds, so repetition (and thus cache locality)
	// is realistic rather than total.
	var pool [][4]float64
	for _, shape := range []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}} {
		qs, err := env.Queries(shape)
		if err != nil {
			return err
		}
		for _, r := range qs.Rects {
			pool = append(pool, [4]float64{r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y})
		}
	}

	report := serveReport{
		Schema:        2,
		GoVersion:     runtime.Version(),
		CPUs:          runtime.GOMAXPROCS(0),
		Scale:         scale.Name,
		ReleaseKind:   tree.Kind(),
		ReleaseHeight: tree.Height(),
		ReleaseBytes:  artifact.Len(),
		UnixTime:      time.Now().Unix(),
	}
	clients := runtime.GOMAXPROCS(0)

	modes := []struct {
		name      string
		batchSize int // 0 = single-query endpoint
		requests  int
	}{
		{"single-cold", 0, len(pool)},
		{"single-hot", 0, 4 * len(pool)},
		{"batch64-cold", 64, (len(pool) + 63) / 64},
		{"batch64-hot", 64, 4 * ((len(pool) + 63) / 64)},
	}
	for _, m := range modes {
		reg := serve.NewRegistry(1 << 16)
		if _, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes())); err != nil {
			return err
		}
		api := &serve.API{Registry: reg}
		srv := httptest.NewServer(api.Handler())

		if isHot(m.name) {
			// Warm pass: prime the cache with the whole pool.
			if err := replay(srv.URL, pool, m.batchSize, 1, (len(pool)+max(m.batchSize, 1)-1)/max(m.batchSize, 1), nil); err != nil {
				srv.Close()
				return err
			}
		}
		rel, _ := reg.Get("bench")
		before := rel.Stats()
		start := time.Now()
		if err := replay(srv.URL, pool, m.batchSize, clients, m.requests, nil); err != nil {
			srv.Close()
			return err
		}
		elapsed := time.Since(start).Seconds()

		// Report the measured pass only: the server's counters are
		// cumulative and would otherwise dilute the hot rows with the
		// all-miss warm pass.
		after := rel.Stats()
		dQueries := after.Queries - before.Queries
		dHits := after.CacheHits - before.CacheHits
		dRequests := after.Requests - before.Requests
		var hitRate float64
		if dQueries > 0 {
			hitRate = float64(dHits) / float64(dQueries)
		}
		var meanNs int64
		if dRequests > 0 {
			totalBefore := before.MeanLatencyNs * int64(before.Requests)
			totalAfter := after.MeanLatencyNs * int64(after.Requests)
			meanNs = (totalAfter - totalBefore) / int64(dRequests)
		}
		queries := m.requests * max(m.batchSize, 1)
		row := serveRow{
			Name:          fmt.Sprintf("%s/clients=%d", m.name, clients),
			Clients:       clients,
			Requests:      m.requests,
			Queries:       queries,
			DistinctRects: len(pool),
			Seconds:       elapsed,
			QueriesPerSec: float64(queries) / elapsed,
			CacheHitRate:  hitRate,
			MeanLatencyNs: meanNs,
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("serve/%-24s %9d queries %8.2fs %12.0f queries/sec  hit-rate %.2f\n",
			row.Name, row.Queries, row.Seconds, row.QueriesPerSec, row.CacheHitRate)
		srv.Close()
	}

	// Fleet rows: the same single-query load through the psdproxy front
	// end — 1 vs 3 replicas for the routing overhead and scaling story,
	// then 3 replicas with one hard-killed mid-run for the failover blip.
	fleetModes := []struct {
		name     string
		replicas int
		requests int
		kill     bool
	}{
		{"fleet1-single", 1, 2 * len(pool), false},
		{"fleet3-single", 3, 2 * len(pool), false},
		{"fleet3-failover", 3, 4 * len(pool), true},
	}
	for _, m := range fleetModes {
		row, err := fleetBench(artifact.Bytes(), pool, clients, m.replicas, m.requests, m.kill)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		row.Name = fmt.Sprintf("%s/clients=%d", m.name, clients)
		report.Rows = append(report.Rows, row)
		fmt.Printf("serve/%-24s %9d queries %8.2fs %12.0f queries/sec  p50 %s p99 %s",
			row.Name, row.Queries, row.Seconds, row.QueriesPerSec,
			time.Duration(row.P50LatencyNs), time.Duration(row.P99LatencyNs))
		if m.kill {
			fmt.Printf("  failover-blip %s", time.Duration(row.FailoverBlipNs))
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := atomicfile.Write(outPath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	fmt.Printf("# wrote %s (%d rows)\n", outPath, len(report.Rows))
	return nil
}

func isHot(name string) bool { return len(name) > 4 && name[len(name)-4:] == "-hot" }

// latRecorder collects client-observed per-request latencies.
type latRecorder struct {
	mu sync.Mutex
	ns []int64
}

func (l *latRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, int64(d))
	l.mu.Unlock()
}

func (l *latRecorder) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ns)
}

// percentiles returns (p50, p99, max) of the recorded latencies.
func (l *latRecorder) percentiles() (int64, int64, int64) {
	l.mu.Lock()
	ns := append([]int64(nil), l.ns...)
	l.mu.Unlock()
	if len(ns) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) int64 { return ns[int(q*float64(len(ns)-1))] }
	return at(0.50), at(0.99), ns[len(ns)-1]
}

// fleetBench runs the single-query load through a real cluster.Proxy over
// `replicas` psdserve stacks. With kill set, one replica is hard-killed
// (client connections severed) a quarter of the way through the run; the
// run still requires every query to succeed — the failover blip shows up
// as tail latency, not as errors.
func fleetBench(artifact []byte, pool [][4]float64, clients, replicas, requests int, kill bool) (serveRow, error) {
	quiet := log.New(io.Discard, "", 0)
	regs := make([]*serve.Registry, replicas)
	servers := make([]*httptest.Server, replicas)
	urls := make([]string, replicas)
	for i := range regs {
		regs[i] = serve.NewRegistry(1 << 16)
		regs[i].SetLogger(quiet)
		if _, err := regs[i].Register("bench", "bench", bytes.NewReader(artifact)); err != nil {
			return serveRow{}, err
		}
		api := &serve.API{Registry: regs[i], Logger: quiet}
		servers[i] = httptest.NewServer(api.Handler())
		api.SetReady(true)
		urls[i] = servers[i].URL
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	p := cluster.NewProxy(urls, 0)
	p.Logger = quiet
	p.AttemptTimeout = 10 * time.Second
	p.SetReady(true)
	h := &cluster.Health{Backends: p.BackendList(),
		Interval: 100 * time.Millisecond, Timeout: time.Second, Logger: quiet}
	hctx, hstop := context.WithCancel(context.Background())
	defer hstop()
	go h.Run(hctx)
	front := httptest.NewServer(p.Handler())
	defer front.Close()

	rec := &latRecorder{}
	var killWG sync.WaitGroup
	if kill {
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			for rec.count() < requests/4 {
				time.Sleep(time.Millisecond)
			}
			servers[0].CloseClientConnections()
			servers[0].Close()
		}()
	}
	start := time.Now()
	if err := replay(front.URL, pool, 0, clients, requests, rec.add); err != nil {
		return serveRow{}, fmt.Errorf("query failed during fleet run (want zero failures): %w", err)
	}
	elapsed := time.Since(start).Seconds()
	killWG.Wait()

	// Aggregate the cache story across the fleet.
	var hits, queries uint64
	for _, reg := range regs {
		if rel, ok := reg.Get("bench"); ok {
			st := rel.Stats()
			hits += st.CacheHits
			queries += st.Queries
		}
	}
	var hitRate float64
	if queries > 0 {
		hitRate = float64(hits) / float64(queries)
	}
	p50, p99, worst := rec.percentiles()
	row := serveRow{
		Clients:       clients,
		Requests:      requests,
		Queries:       requests,
		DistinctRects: len(pool),
		Seconds:       elapsed,
		QueriesPerSec: float64(requests) / elapsed,
		CacheHitRate:  hitRate,
		Replicas:      replicas,
		P50LatencyNs:  p50,
		P99LatencyNs:  p99,
	}
	if kill {
		row.FailoverBlipNs = worst
	}
	return row, nil
}

// replay issues n requests against the server from the given number of
// concurrent clients, cycling through the query pool. batchSize 0 uses the
// single-query endpoint; otherwise each request carries batchSize rects.
// record, when non-nil, receives each request's client-observed latency.
func replay(baseURL string, pool [][4]float64, batchSize, clients, n int, record func(time.Duration)) error {
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var err error
				reqStart := time.Now()
				if batchSize == 0 {
					r := pool[i%len(pool)]
					url := fmt.Sprintf("%s/v1/releases/bench/count?rect=%g,%g,%g,%g",
						baseURL, r[0], r[1], r[2], r[3])
					err = drainGet(client, url)
				} else {
					rects := make([][4]float64, batchSize)
					for j := range rects {
						rects[j] = pool[(i*batchSize+j)%len(pool)]
					}
					var body []byte
					body, err = json.Marshal(map[string]any{"rects": rects})
					if err == nil {
						err = drainPost(client, baseURL+"/v1/releases/bench/batch", body)
					}
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if record != nil {
					record(time.Since(reqStart))
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

func drainGet(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	return json.NewDecoder(resp.Body).Decode(&out)
}

func drainPost(c *http.Client, url string, body []byte) error {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
	}
	var out struct {
		Counts []float64 `json:"counts"`
	}
	return json.NewDecoder(resp.Body).Decode(&out)
}
