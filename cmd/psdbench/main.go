// Command psdbench regenerates the tables and figures of the paper's
// experimental study (Section 8). Each subcommand prints the same
// rows/series the corresponding figure plots.
//
// Usage:
//
//	psdbench [flags] <experiment>
//
// Experiments:
//
//	fig2    worst-case Err(Q), uniform vs geometric budgets
//	fig3    quadtree optimizations (baseline/geo/post/opt)
//	fig4    private median quality and timing
//	fig5    kd-tree family comparison
//	fig6    accuracy vs tree height
//	fig7a   construction time
//	fig7b   private record matching reduction ratio
//	grid    flat-grid baseline [6] vs optimized quadtree
//	ablate  parameter sweeps (switch level, count fraction, budget ratio,
//	        Hilbert order, pruning threshold)
//	bench   build/query hot-path microbenchmarks, written as JSON
//	        (-benchout, default BENCH_build.json) so the performance
//	        trajectory is machine-readable across commits
//	query-bench
//	        query-side hot paths: single query and batch CountAll on the
//	        arena vs the flat slab engine, the node-major batch engine vs
//	        the per-query loop (batch 256/1024/4096), release open time
//	        for the JSON vs binary encoding, and the allocation-free
//	        serve.Count path, written as JSON (-queryout, default
//	        BENCH_query.json)
//	serve-bench
//	        HTTP serving load generator: queries/sec and cache hit rate
//	        through the psdserve handler stack, written as JSON
//	        (-serveout, default BENCH_serve.json)
//	all     everything above (except bench, query-bench and serve-bench)
//
// Flags:
//
//	-paper         run at full paper scale (1.63M points, 600 queries/shape);
//	               the default is a 10x reduced quick scale
//	-seed N        override the experiment seed
//	-cpuprofile F  write a pprof CPU profile of the run to F
//	-memprofile F  write a pprof heap profile (after the run) to F
//
// The profile flags exist so performance PRs can attach pprof evidence for
// any experiment, e.g.:
//
//	psdbench -cpuprofile cpu.out query-bench && go tool pprof cpu.out
//
// The PSD_PAPER_SCALE=1 environment variable is equivalent to -paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"psd/internal/budget"
	"psd/internal/eval"
	"psd/internal/workload"
)

func main() {
	paper := flag.Bool("paper", os.Getenv("PSD_PAPER_SCALE") == "1",
		"run at full paper scale (slow)")
	seed := flag.Int64("seed", 0, "override experiment seed (0 keeps default)")
	benchOut := flag.String("benchout", "BENCH_build.json",
		"output path for the bench experiment's JSON report")
	queryOut := flag.String("queryout", "BENCH_query.json",
		"output path for the query-bench experiment's JSON report")
	testdata := flag.String("testdata", "testdata",
		"directory holding the golden release fixtures (query-bench open rows)")
	serveOut := flag.String("serveout", "BENCH_serve.json",
		"output path for the serve-bench experiment's JSON report")
	cpuProfile := flag.String("cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "",
		"write a pprof heap profile (captured after the run) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: psdbench [flags] <fig2|fig3|fig4|fig5|fig6|fig7a|fig7b|grid|ablate|bench|query-bench|serve-bench|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := strings.ToLower(flag.Arg(0))

	scale := eval.QuickScale
	if *paper {
		scale = eval.PaperScale
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile) //lint:allow fsyncdiscipline -- pprof profiles are throwaway diagnostics, not durable artifacts; pprof needs the live handle
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "psdbench:", err)
			os.Exit(1)
		}
	}

	err := run(which, scale, *paper, *benchOut, *queryOut, *testdata, *serveOut)

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	memErr := error(nil)
	if *memProfile != "" {
		f, merr := os.Create(*memProfile) //lint:allow fsyncdiscipline -- pprof profiles are throwaway diagnostics, not durable artifacts; pprof needs the live handle
		if merr == nil {
			runtime.GC() // settle the heap so the profile shows live data
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		memErr = merr
	}
	// Report the experiment's own error first — it is the interesting one —
	// then any profile-writing failure; exit non-zero on either.
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdbench:", err)
	}
	if memErr != nil {
		fmt.Fprintln(os.Stderr, "psdbench: memprofile:", memErr)
	}
	if err != nil || memErr != nil {
		os.Exit(1)
	}
}

func run(which string, scale eval.Scale, paper bool, benchOut, queryOut, testdata, serveOut string) error {
	needEnv := which != "fig2" && which != "fig4" && which != "fig7b"
	var env *eval.Env
	if needEnv || which == "all" {
		start := time.Now()
		fmt.Printf("# dataset: %d synthetic road points (scale=%s, seed=%d)\n",
			scale.Points, scale.Name, scale.Seed)
		var err error
		env, err = eval.NewEnv(scale)
		if err != nil {
			return err
		}
		fmt.Printf("# dataset+index built in %s\n\n", time.Since(start).Round(time.Millisecond))
	}

	// Heights follow the paper at -paper scale and shrink one notch at
	// quick scale so runs stay in minutes.
	quadH, kdH := 10, 8
	fig6Heights := []int{6, 7, 8, 9, 10, 11}
	if !paper {
		quadH, kdH = 8, 6
		fig6Heights = []int{5, 6, 7, 8}
	}
	epss := []float64{0.1, 0.5, 1.0}

	experiments := map[string]func() error{
		"fig2": func() error {
			rows, err := budget.Figure2(5, 10)
			if err != nil {
				return err
			}
			eval.PrintFigure2(os.Stdout, rows)
			return nil
		},
		"fig3": func() error {
			rows, err := eval.Figure3(env, quadH, epss, workload.PaperShapes)
			if err != nil {
				return err
			}
			eval.PrintFigure3(os.Stdout, rows)
			return nil
		},
		"fig4": func() error {
			cfg := eval.PaperFigure4
			cfg.Values = scale.MedianValues
			cfg.Seed = scale.Seed
			rows, err := eval.Figure4(cfg)
			if err != nil {
				return err
			}
			eval.PrintFigure4(os.Stdout, rows)
			return nil
		},
		"fig5": func() error {
			shapes := []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}}
			rows, err := eval.Figure5(env, kdH, epss, shapes)
			if err != nil {
				return err
			}
			eval.PrintFigure5(os.Stdout, rows)
			return nil
		},
		"fig6": func() error {
			shapes := []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}}
			rows, err := eval.Figure6(env, fig6Heights, 0.5, shapes)
			if err != nil {
				return err
			}
			eval.PrintFigure6(os.Stdout, rows)
			return nil
		},
		"fig7a": func() error {
			rows, err := eval.Figure7a(env, kdH, quadH, 0.5)
			if err != nil {
				return err
			}
			eval.PrintFigure7a(os.Stdout, rows)
			return nil
		},
		"fig7b": func() error {
			cfg := eval.Figure7bConfig{Seed: scale.Seed}
			if paper {
				cfg.PartySize = 20000
				cfg.Reps = 5
			}
			rows, err := eval.Figure7b(cfg, []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5})
			if err != nil {
				return err
			}
			eval.PrintFigure7b(os.Stdout, rows)
			return nil
		},
		"grid": func() error {
			rows, err := eval.GridBaseline(env, 1024, quadH, 0.5, workload.PaperShapes)
			if err != nil {
				return err
			}
			eval.PrintGridBaseline(os.Stdout, rows)
			return nil
		},
		"bench": func() error {
			return runBenchJSON(env, scale, benchOut)
		},
		"query-bench": func() error {
			return runQueryBench(env, scale, testdata, queryOut)
		},
		"serve-bench": func() error {
			return runServeBench(env, scale, serveOut)
		},
		"ablate": func() error {
			shapes := []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}}
			if rows, err := eval.SwitchLevelSweep(env, kdH, 0.5, shapes); err != nil {
				return err
			} else {
				eval.PrintSweep(os.Stdout, "Ablation: hybrid switch level (Section 8.2)", "switch", rows)
			}
			fmt.Println()
			fracs := []float64{0.3, 0.5, 0.7, 0.9}
			if rows, err := eval.CountFractionSweep(env, kdH, 0.5, fracs, shapes); err != nil {
				return err
			} else {
				eval.PrintSweep(os.Stdout, "Ablation: count budget fraction (Section 8.2)", "frac", rows)
			}
			fmt.Println()
			ratios := []float64{1.0, 1.1, 1.26, 1.5, 1.75, 2.0}
			if rows, err := eval.GeometricRatioSweep(env, quadH, 0.2, ratios, shapes); err != nil {
				return err
			} else {
				eval.PrintSweep(os.Stdout, "Ablation: geometric budget ratio (Lemma 3 optimum 1.26)", "ratio", rows)
			}
			fmt.Println()
			if rows, err := eval.HilbertOrderSweep(env, kdH-1, 0.5, []uint{16, 18, 20, 24}, shapes); err != nil {
				return err
			} else {
				eval.PrintSweep(os.Stdout, "Ablation: Hilbert curve order (Section 8.2)", "order", rows)
			}
			fmt.Println()
			if rows, err := eval.PruneThresholdSweep(env, kdH, 0.2, []float64{0, 8, 32, 128}, shapes); err != nil {
				return err
			} else {
				eval.PrintSweep(os.Stdout, "Ablation: pruning threshold m (Section 7)", "m", rows)
			}
			return nil
		},
	}

	if which == "all" {
		for _, name := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b", "grid", "ablate"} {
			fmt.Printf("== %s ==\n", name)
			start := time.Now()
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	exp, ok := experiments[which]
	if !ok {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return exp()
}
