package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"psd"
	"psd/internal/atomicfile"
	"psd/internal/eval"
	"psd/internal/serve"
	"psd/internal/workload"
)

// queryReport is the machine-readable query-side performance snapshot
// `psdbench query-bench` writes (BENCH_query.json by default): the serving
// hot paths — single query, batch CountAll, artifact open, and the
// in-process serve.Count — measured on both read engines (the tree arena
// and the flat slab) and both release encodings (JSON format 1 and binary
// format v2), so the two tentpole speedups are pinned as committed numbers.
type queryReport struct {
	Schema    int        `json:"schema"`
	GoVersion string     `json:"go_version"`
	CPUs      int        `json:"cpus"`
	Scale     string     `json:"scale"`
	Points    int        `json:"points"`
	UnixTime  int64      `json:"unix_time"`
	Rows      []queryRow `json:"rows"`
}

// queryRow is one measured configuration.
type queryRow struct {
	// Name is "<op>/<case>/<engine>[/par=<n>]".
	Name string `json:"name"`
	// Op is "query", "countall", "batch", "open", "servecount" or
	// "servebatch".
	Op string `json:"op"`
	// Engine is "arena" or "slab" (read engines), "perquery" or
	// "nodemajor" (batch rows), or "json" or "binary" (release encodings,
	// for open rows).
	Engine string `json:"engine"`
	// Parallelism is the worker bound (countall rows; 0 = one per core).
	Parallelism int `json:"parallelism,omitempty"`
	// NsPerOp is wall time per operation (one query, one batch, one open).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark framework. The
	// acceptance bar for single-query rows is 0 allocs/op.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// QueriesPerSec is batch throughput (countall rows).
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	// ArtifactBytes is the serialized size (open rows).
	ArtifactBytes int `json:"artifact_bytes,omitempty"`
	// SpeedupVsArena is arena-ns / this-ns on the matching arena row
	// (slab rows), and SpeedupVsJSON is json-ns / this-ns (binary open
	// rows): the PR 3 tentpole acceptance ratios.
	SpeedupVsArena float64 `json:"speedup_vs_arena,omitempty"`
	SpeedupVsJSON  float64 `json:"speedup_vs_json,omitempty"`
	// SpeedupVsPerQuery is perquery-ns / this-ns on the matching
	// per-query slab row (nodemajor batch rows): the node-major batch
	// engine's acceptance ratio, >= 2x required at batch >= 1k.
	SpeedupVsPerQuery float64 `json:"speedup_vs_perquery,omitempty"`
	// SpeedupVsV2 is v2-decode-ns / this-ns on the matching v2 open row
	// (mmap-v3 open rows): the zero-copy open acceptance ratio, >= 10x
	// required on an h>=10 artifact.
	SpeedupVsV2 float64 `json:"speedup_vs_v2,omitempty"`
	// HeapDeltaBytes and RSSDeltaBytes are the steady-state memory grown by
	// holding the opened slab and serving a query sweep from it (large open
	// rows): Go heap in use, and the process's resident set (Linux; 0 where
	// /proc is unavailable). The mmap rows count only the pages the sweep
	// faulted in — and those are page-cache pages shared across replicas —
	// where the decode rows pay the full private copy.
	HeapDeltaBytes int64 `json:"heap_delta_bytes,omitempty"`
	RSSDeltaBytes  int64 `json:"rss_delta_bytes,omitempty"`
}

// benchNs runs fn under testing.Benchmark and returns the per-op numbers.
func benchNs(fn func(b *testing.B)) (ns float64, allocs, bytes int64) {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return float64(res.NsPerOp()), res.AllocsPerOp(), res.AllocedBytesPerOp()
}

// runQueryBench measures the query/serving hot paths and writes the report.
// The open rows use the committed golden quadtree fixture (testdataDir), so
// the measured artifact is the exact one CI serves end-to-end.
func runQueryBench(env *eval.Env, scale eval.Scale, testdataDir, outPath string) error {
	report := queryReport{
		Schema:    1,
		GoVersion: runtime.Version(),
		CPUs:      runtime.GOMAXPROCS(0),
		Scale:     scale.Name,
		Points:    len(env.Data.Points),
		UnixTime:  time.Now().Unix(),
	}

	// The acceptance configuration: the kd h=8 build of BuildBenchConfigs,
	// queried with the paper's 10%×10% workload at serving batch size.
	tree, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.KDTree, Height: 8, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	slab := tree.Seal()
	qs, err := env.Queries(workload.QueryShape{W: 10, H: 10})
	if err != nil {
		return err
	}
	batch := make([]psd.Rect, 0, 960)
	for len(batch) < 960 {
		batch = append(batch, qs.Rects...)
	}
	small, err := env.Queries(workload.QueryShape{W: 1, H: 1})
	if err != nil {
		return err
	}
	d := env.Data.Domain
	large := psd.NewRect(
		d.Lo.X+0.05*d.Width(), d.Lo.Y+0.05*d.Height(),
		d.Lo.X+0.95*d.Width(), d.Lo.Y+0.95*d.Height(),
	)

	emit := func(row queryRow) {
		report.Rows = append(report.Rows, row)
		extra := ""
		if row.SpeedupVsArena > 0 {
			extra = fmt.Sprintf("  %.2fx vs arena", row.SpeedupVsArena)
		}
		if row.SpeedupVsJSON > 0 {
			extra = fmt.Sprintf("  %.2fx vs json", row.SpeedupVsJSON)
		}
		if row.SpeedupVsPerQuery > 0 {
			extra = fmt.Sprintf("  %.2fx vs perquery", row.SpeedupVsPerQuery)
		}
		if row.SpeedupVsV2 > 0 {
			extra = fmt.Sprintf("  %.2fx vs v2", row.SpeedupVsV2)
		}
		fmt.Printf("%-36s %12.0f ns/op %6d allocs/op%s\n", row.Name, row.NsPerOp, row.AllocsPerOp, extra)
	}

	// Single-query latency, small and large rects, both engines. Allocs
	// must be 0: the DFS stacks are pooled.
	queryCases := []struct {
		name  string
		rects []psd.Rect
	}{
		{"small", small.Rects},
		{"large", []psd.Rect{large}},
	}
	for _, qc := range queryCases {
		rects := qc.rects
		arenaNs, arenaAllocs, arenaBytes := benchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tree.Count(rects[i%len(rects)])
			}
		})
		emit(queryRow{
			Name: "query/" + qc.name + "/arena", Op: "query", Engine: "arena",
			NsPerOp: arenaNs, AllocsPerOp: arenaAllocs, BytesPerOp: arenaBytes,
		})
		slabNs, slabAllocs, slabBytes := benchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = slab.Count(rects[i%len(rects)])
			}
		})
		emit(queryRow{
			Name: "query/" + qc.name + "/slab", Op: "query", Engine: "slab",
			NsPerOp: slabNs, AllocsPerOp: slabAllocs, BytesPerOp: slabBytes,
			SpeedupVsArena: arenaNs / slabNs,
		})
	}

	// Batch CountAll on the kd h=8 tree: the acceptance comparison. par=1
	// isolates the engines with a sequential loop; par=0 runs the real
	// CountAll worker pool (one worker per core), the serving configuration.
	for _, par := range []int{1, 0} {
		par := par
		arenaNs, arenaAllocs, arenaBytes := benchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = arenaCountAll(tree, batch, par)
			}
		})
		emit(queryRow{
			Name: fmt.Sprintf("countall/kd-h8-batch960/arena/par=%d", par),
			Op:   "countall", Engine: "arena", Parallelism: par,
			NsPerOp: arenaNs, AllocsPerOp: arenaAllocs, BytesPerOp: arenaBytes,
			QueriesPerSec: float64(len(batch)) * 1e9 / arenaNs,
		})
		slabNs, slabAllocs, slabBytes := benchNs(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = slabCountAll(slab, batch, par)
			}
		})
		emit(queryRow{
			Name: fmt.Sprintf("countall/kd-h8-batch960/slab/par=%d", par),
			Op:   "countall", Engine: "slab", Parallelism: par,
			NsPerOp: slabNs, AllocsPerOp: slabAllocs, BytesPerOp: slabBytes,
			QueriesPerSec:  float64(len(batch)) * 1e9 / slabNs,
			SpeedupVsArena: arenaNs / slabNs,
		})
	}

	// Node-major batch engine vs the per-query slab loop — the tentpole
	// comparison of the batch-engine PR. The batches are unique 10%×10%
	// queries (no repeats: repeats overstate locality), answered on the
	// same kd h=8 slab two ways: one DFS per query (the PR 3 serving
	// path, the committed per-query slab baseline) and one node-major
	// pass. par=1 isolates the engines on a single core; par=0 lets the
	// batch engine shard across the machine. The acceptance bar is >= 2x
	// at batch >= 1k.
	uniq, err := workload.GenQueries(env.Index, workload.QueryShape{W: 10, H: 10},
		4096, scale.Seed^0xba7c4)
	if err != nil {
		return err
	}
	// Alongside the acceptance kd slab, the adaptive privtree h=8 slab —
	// mostly unpublished interior behind pruned adaptive leaves — tracks the
	// batch engine's bitset-heavy path, which fixed-height trees never
	// exercise at depth. One size and par=1 keep its runtime negligible.
	ptree, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.PrivTreeKind, Height: 8, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	batchAxes := []struct {
		label string
		slab  *psd.Slab
		sizes []int
		pars  []int
	}{
		{"kd-h8", slab, []int{256, 1024, 4096}, []int{1, 0}},
		{"privtree-h8", ptree.Seal(), []int{1024}, []int{1}},
	}
	for _, ax := range batchAxes {
		for _, size := range ax.sizes {
			bqs := uniq.Rects[:size]
			out := make([]float64, size)
			perNs, perAllocs, perBytes := benchNs(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for j, q := range bqs {
						out[j] = ax.slab.Count(q)
					}
				}
			})
			emit(queryRow{
				Name: fmt.Sprintf("batch/%s-n%d/perquery", ax.label, size),
				Op:   "batch", Engine: "perquery", Parallelism: 1,
				NsPerOp: perNs, AllocsPerOp: perAllocs, BytesPerOp: perBytes,
				QueriesPerSec: float64(size) * 1e9 / perNs,
			})
			for _, par := range ax.pars {
				par := par
				ax.slab.CountBatchIntoWorkers(out, bqs, par) // warm the pools
				nmNs, nmAllocs, nmBytes := benchNs(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						ax.slab.CountBatchIntoWorkers(out, bqs, par)
					}
				})
				emit(queryRow{
					Name: fmt.Sprintf("batch/%s-n%d/nodemajor/par=%d", ax.label, size, par),
					Op:   "batch", Engine: "nodemajor", Parallelism: par,
					NsPerOp: nmNs, AllocsPerOp: nmAllocs, BytesPerOp: nmBytes,
					QueriesPerSec:     float64(size) * 1e9 / nmNs,
					SpeedupVsPerQuery: perNs / nmNs,
				})
			}
		}
	}

	// Artifact open into the serving form, both encodings of the golden
	// quadtree release.
	jsonBytes, err := os.ReadFile(filepath.Join(testdataDir, "release_quadtree.json"))
	if err != nil {
		return fmt.Errorf("query-bench needs the golden fixtures (run from the repo root, or pass -testdata): %w", err)
	}
	goldenSlab, err := psd.OpenSlab(bytes.NewReader(jsonBytes))
	if err != nil {
		return err
	}
	var binBuf bytes.Buffer
	if err := goldenSlab.WriteBinaryRelease(&binBuf); err != nil {
		return err
	}
	binBytes := binBuf.Bytes()
	jsonNs, jsonAllocs, jsonAlloced := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := psd.OpenSlab(bytes.NewReader(jsonBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	emit(queryRow{
		Name: "open/golden-quadtree/json", Op: "open", Engine: "json",
		NsPerOp: jsonNs, AllocsPerOp: jsonAllocs, BytesPerOp: jsonAlloced,
		ArtifactBytes: len(jsonBytes),
	})
	binNs, binAllocs, binAlloced := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := psd.OpenSlab(bytes.NewReader(binBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	emit(queryRow{
		Name: "open/golden-quadtree/binary", Op: "open", Engine: "binary",
		NsPerOp: binNs, AllocsPerOp: binAllocs, BytesPerOp: binAlloced,
		ArtifactBytes: len(binBytes),
		SpeedupVsJSON: jsonNs / binNs,
	})

	// Large-artifact open: an h=10 quadtree (1.4M nodes, ~56MB as v3) of
	// the same data, written as binary v2 and v3 to real files, opened the
	// way a serving replica would. The v2 row decodes and validates every
	// column into fresh heap; the v3 row is OpenSlabFile's zero-copy path —
	// mmap plus header/bitset validation, node pages left on disk — so its
	// latency is independent of artifact size. The acceptance bar is >= 10x
	// on open latency with lower steady-state residency.
	big, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	bigDir, err := os.MkdirTemp("", "psdbench-open")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bigDir)
	v2Path := filepath.Join(bigDir, "big_v2.bin")
	v3Path := filepath.Join(bigDir, "big_v3.bin")
	if err := writeToFile(v2Path, big.WriteBinaryRelease); err != nil {
		return err
	}
	if err := writeToFile(v3Path, big.WriteBinaryV3Release); err != nil {
		return err
	}
	v2Size, v3Size := fileSize(v2Path), fileSize(v3Path)
	// The residency sweep is the 1%x1% workload: a serving replica's hot
	// set touches a sliver of a deep tree, which is exactly the case the
	// on-demand page faulting exists for. The decode row pays the full
	// private copy no matter what is queried; the mmap row's residency is
	// proportional to the pages the workload actually visits.
	sweep := small.Rects
	// Residency first, mmap before decode: RSS only ever grows (freed heap
	// is returned to the OS lazily), so the small measurement needs the
	// fresh baseline.
	v3Heap, v3RSS, err := measureResident(func() (*psd.Slab, error) { return psd.OpenSlabFile(v3Path) }, sweep)
	if err != nil {
		return err
	}
	v2Heap, v2RSS, err := measureResident(func() (*psd.Slab, error) { return psd.OpenSlabFile(v2Path) }, sweep)
	if err != nil {
		return err
	}
	v2Ns, v2OpenAllocs, v2OpenBytes := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := psd.OpenSlabFile(v2Path)
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	emit(queryRow{
		Name: "open/quadtree-h10/binary-v2", Op: "open", Engine: "binary",
		NsPerOp: v2Ns, AllocsPerOp: v2OpenAllocs, BytesPerOp: v2OpenBytes,
		ArtifactBytes:  int(v2Size),
		HeapDeltaBytes: v2Heap, RSSDeltaBytes: v2RSS,
	})
	v3Ns, v3OpenAllocs, v3OpenBytes := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := psd.OpenSlabFile(v3Path)
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	emit(queryRow{
		Name: "open/quadtree-h10/mmap-v3", Op: "open", Engine: "mmap",
		NsPerOp: v3Ns, AllocsPerOp: v3OpenAllocs, BytesPerOp: v3OpenBytes,
		ArtifactBytes:  int(v3Size),
		SpeedupVsV2:    v2Ns / v3Ns,
		HeapDeltaBytes: v3Heap, RSSDeltaBytes: v3RSS,
	})

	// serve.Release.Count with the cache off: the handler-level hot path
	// must not allocate either.
	reg := serve.NewRegistry(0)
	var artifact bytes.Buffer
	if err := tree.WriteBinaryRelease(&artifact); err != nil {
		return err
	}
	rel, err := reg.Register("bench", "bench", bytes.NewReader(artifact.Bytes()))
	if err != nil {
		return err
	}
	q := batch[0]
	rel.Count(q)
	srvNs, srvAllocs, srvBytes := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel.Count(q)
		}
	})
	emit(queryRow{
		Name: "servecount/nocache/slab", Op: "servecount", Engine: "slab",
		NsPerOp: srvNs, AllocsPerOp: srvAllocs, BytesPerOp: srvBytes,
	})

	// serve.Release.CountBatchInto with the cache off: the /batch handler's
	// engine call. Every rectangle is a miss, so the whole batch runs
	// through one node-major call per request; the acceptance bar is 0
	// allocs/op steady-state (cache-miss insertions excluded — caching is
	// off, so none happen).
	srvBatch := uniq.Rects[:256]
	srvVals := make([]float64, len(srvBatch))
	rel.CountBatchInto(srvVals, srvBatch) // warm the pools
	sbNs, sbAllocs, sbBytes := benchNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel.CountBatchInto(srvVals, srvBatch)
		}
	})
	emit(queryRow{
		Name: "servebatch/nocache-n256/nodemajor", Op: "servebatch", Engine: "nodemajor",
		NsPerOp: sbNs, AllocsPerOp: sbAllocs, BytesPerOp: sbBytes,
		QueriesPerSec: float64(len(srvBatch)) * 1e9 / sbNs,
	})

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := atomicfile.Write(outPath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	fmt.Printf("# wrote %s (%d rows)\n", outPath, len(report.Rows))
	return nil
}

// arenaCountAll pins the measured path: workers == 1 is an explicit
// sequential loop, anything else goes through the CountAll worker pool
// (one worker per core) — so the par=0 rows really measure the pool even
// on machines the treeCountAll helper would run inline.
func arenaCountAll(t *psd.Tree, qs []psd.Rect, workers int) []float64 {
	if workers == 1 {
		out := make([]float64, len(qs))
		for i, q := range qs {
			out[i] = t.Count(q)
		}
		return out
	}
	return t.CountAll(qs)
}

// slabCountAll mirrors arenaCountAll for the slab engine.
func slabCountAll(s *psd.Slab, qs []psd.Rect, workers int) []float64 {
	if workers == 1 {
		out := make([]float64, len(qs))
		for i, q := range qs {
			out[i] = s.Count(q)
		}
		return out
	}
	return s.CountAll(qs)
}

// writeToFile streams write into a fresh file at path, through the
// fsync-before-rename seam so a crashed bench never leaves a torn artifact
// for a later comparison run to mis-measure.
func writeToFile(path string, write func(io.Writer) error) error {
	_, err := atomicfile.Write(path, write)
	return err
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// measureResident opens one artifact, serves a query sweep from it, and
// reports the steady-state Go-heap and RSS growth while the slab is held —
// the per-replica memory cost of keeping that release loaded. The slab is
// closed (and its mapping released) before returning.
func measureResident(open func() (*psd.Slab, error), sweep []psd.Rect) (heapDelta, rssDelta int64, err error) {
	// FreeOSMemory (GC + scavenge) pins both readings to live memory:
	// without it, heap freed by earlier measurements but not yet returned
	// to the OS skews the RSS baseline. It only releases unused spans, so
	// the held slab's cost is fully visible in the second reading.
	debug.FreeOSMemory()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rss0 := readRSS()
	slab, err := open()
	if err != nil {
		return 0, 0, err
	}
	for _, q := range sweep {
		slab.Count(q)
	}
	debug.FreeOSMemory()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	rss1 := readRSS()
	heapDelta = int64(m1.HeapInuse) - int64(m0.HeapInuse)
	rssDelta = rss1 - rss0
	slab.Close()
	return heapDelta, rssDelta, nil
}

// readRSS returns the process's resident set in bytes (Linux /proc; 0
// where unavailable — the heap delta still carries the comparison).
func readRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	return 0
}
