package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"psd"
	"psd/internal/atomicfile"
	"psd/internal/eval"
	"psd/internal/workload"
)

// benchReport is the machine-readable performance snapshot psdbench bench
// writes (BENCH_build.json by default), so the perf trajectory of the build
// and query hot paths can be compared across commits without parsing Go
// benchmark text output.
type benchReport struct {
	// Schema versions the JSON layout.
	Schema int `json:"schema"`
	// GoVersion, CPUs and Scale describe the machine and workload.
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Scale     string `json:"scale"`
	Points    int    `json:"points"`
	// UnixTime is the measurement time (seconds since epoch).
	UnixTime int64      `json:"unix_time"`
	Rows     []benchRow `json:"rows"`
}

// benchRow is one benchmarked configuration.
type benchRow struct {
	// Name is "<op>/<config>/par=<n>".
	Name string `json:"name"`
	// Op is "build" or "countall".
	Op string `json:"op"`
	// Kind is the decomposition family (build rows).
	Kind string `json:"kind,omitempty"`
	// Height is the tree height (build rows).
	Height int `json:"height,omitempty"`
	// Parallelism is the worker bound the run used (0 = all cores).
	Parallelism int `json:"parallelism"`
	// NsPerOp is wall time per operation (one build, or one batch).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the Go benchmark framework.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// PointsPerSec is build throughput (build rows).
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	// QueriesPerSec is batch query throughput (countall rows).
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
}

// runBenchJSON measures the representative build and batch-query
// configurations at the given scale and writes the report to outPath.
func runBenchJSON(env *eval.Env, scale eval.Scale, outPath string) error {
	report := benchReport{
		Schema:    1,
		GoVersion: runtime.Version(),
		CPUs:      runtime.GOMAXPROCS(0),
		Scale:     scale.Name,
		Points:    len(env.Data.Points),
		UnixTime:  time.Now().Unix(),
	}
	parLevels := psd.BenchParallelisms()

	// The configuration table is shared with bench_test.go's BenchmarkBuild
	// so the JSON report and the go-benchmark suite measure the same thing.
	for _, c := range psd.BuildBenchConfigs() {
		for _, par := range parLevels {
			kind, height, parallelism := c.Kind, c.Height, par
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
						Kind: kind, Height: height, Epsilon: 0.5,
						Seed: int64(i + 1), Parallelism: parallelism,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(res.NsPerOp())
			report.Rows = append(report.Rows, benchRow{
				Name:         fmt.Sprintf("build/%s/par=%d", c.Name, par),
				Op:           "build",
				Kind:         c.Kind.String(),
				Height:       c.Height,
				Parallelism:  par,
				NsPerOp:      ns,
				AllocsPerOp:  res.AllocsPerOp(),
				BytesPerOp:   res.AllocedBytesPerOp(),
				PointsPerSec: float64(len(env.Data.Points)) * 1e9 / ns,
			})
			fmt.Printf("build/%-16s par=%-2d %12.0f ns/op %10d allocs/op %12.0f points/sec\n",
				c.Name, par, ns, res.AllocsPerOp(), float64(len(env.Data.Points))*1e9/ns)
		}
	}

	tree, err := psd.Build(env.Data.Points, env.Data.Domain, psd.Options{
		Kind: psd.QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		return err
	}
	qs, err := env.Queries(workload.QueryShape{W: 10, H: 10})
	if err != nil {
		return err
	}
	batch := make([]psd.Rect, 0, 960)
	for len(batch) < 960 {
		batch = append(batch, qs.Rects...)
	}
	for _, par := range parLevels {
		parallelism := par
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// par=0 would also work; pin the axis value for the report.
				_ = treeCountAll(tree, batch, parallelism)
			}
		})
		ns := float64(res.NsPerOp())
		report.Rows = append(report.Rows, benchRow{
			Name:          fmt.Sprintf("countall/batch%d/par=%d", len(batch), par),
			Op:            "countall",
			Parallelism:   par,
			NsPerOp:       ns,
			AllocsPerOp:   res.AllocsPerOp(),
			BytesPerOp:    res.AllocedBytesPerOp(),
			QueriesPerSec: float64(len(batch)) * 1e9 / ns,
		})
		fmt.Printf("countall/batch%-6d par=%-2d %12.0f ns/op %10d allocs/op %12.0f queries/sec\n",
			len(batch), par, ns, res.AllocsPerOp(), float64(len(batch))*1e9/ns)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := atomicfile.Write(outPath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	fmt.Printf("# wrote %s (%d rows)\n", outPath, len(report.Rows))
	return nil
}

// treeCountAll pins the worker count for reporting. The public CountAll
// always uses every core; the report wants the explicit axis.
func treeCountAll(t *psd.Tree, qs []psd.Rect, workers int) []float64 {
	if workers <= 1 {
		out := make([]float64, len(qs))
		for i, q := range qs {
			out[i] = t.Count(q)
		}
		return out
	}
	return t.CountAll(qs)
}
