module psd

go 1.24
