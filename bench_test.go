package psd

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 8). Each bench regenerates the corresponding rows via the
// internal/eval harness at QuickScale (163K points, 60 queries/shape) so
// `go test -bench=.` completes in minutes; the cmd/psdbench tool runs the
// same code at the full paper scale. Headline numbers are attached to the
// benchmark output via b.ReportMetric, and EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"psd/internal/budget"
	"psd/internal/eval"
	"psd/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *eval.Env
	benchEnvErr  error
)

func quickEnv(b *testing.B) *eval.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := eval.QuickScale
		scale.Reps = 1 // one tree per configuration; queries pool the noise
		benchEnv, benchEnvErr = eval.NewEnv(scale)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkFigure2 regenerates Figure 2: closed-form worst-case Err(Q) for
// the uniform vs geometric budget strategies, h = 5..10.
func BenchmarkFigure2(b *testing.B) {
	var rows []budget.Figure2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = budget.Figure2(5, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Uniform, "uniform_h10")
	b.ReportMetric(last.Geometric, "geometric_h10")
}

// BenchmarkFigure3 regenerates Figure 3: quadtree optimizations
// (quad-baseline / quad-geo / quad-post / quad-opt) across query shapes at
// ε = 0.1 (the paper's hardest privacy setting, Figure 3a).
func BenchmarkFigure3(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure3(env, 8, []float64{0.1}, workload.PaperShapes)
		if err != nil {
			b.Fatal(err)
		}
		var base, opt float64
		for _, r := range rows {
			base += r.Baseline
			opt += r.Opt
		}
		b.ReportMetric(base/float64(len(rows)), "baseline_relerr_pct")
		b.ReportMetric(opt/float64(len(rows)), "opt_relerr_pct")
	}
}

// BenchmarkFigure4Quality regenerates Figure 4(a): per-depth rank error of
// the six private median methods.
func BenchmarkFigure4Quality(b *testing.B) {
	cfg := eval.PaperFigure4
	cfg.Values = 1 << 16 // quick scale; psdbench -paper uses 2^20
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "EM" && r.Depth == 0 {
				b.ReportMetric(r.RankErr, "em_root_rankerr_pct")
			}
			if r.Method == "NM" && r.Depth == cfg.Depths-1 {
				b.ReportMetric(r.RankErr, "nm_deep_rankerr_pct")
			}
		}
	}
}

// BenchmarkFigure4Time regenerates Figure 4(b): median-finding time. The
// benchmark's own ns/op is the figure's aggregate; per-method totals are
// reported as metrics (milliseconds).
func BenchmarkFigure4Time(b *testing.B) {
	cfg := eval.PaperFigure4
	cfg.Values = 1 << 16
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		totals := map[string]float64{}
		for _, r := range rows {
			totals[r.Method] += float64(r.Time.Milliseconds())
		}
		b.ReportMetric(totals["EM"], "em_total_ms")
		b.ReportMetric(totals["SS"], "ss_total_ms")
		b.ReportMetric(totals["EMs"], "ems_total_ms")
		b.ReportMetric(totals["SSs"], "sss_total_ms")
	}
}

// BenchmarkFigure5 regenerates Figure 5: the kd-tree family (kd-pure,
// kd-true, kd-standard, kd-hybrid, kd-cell, kd-noisymean) at ε = 0.5.
func BenchmarkFigure5(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure5(env, 6, []float64{0.5}, shapes)
		if err != nil {
			b.Fatal(err)
		}
		var hybrid, noisymean float64
		for _, r := range rows {
			hybrid += r.Errors["kd-hybrid"]
			noisymean += r.Errors["kd-noisymean"]
		}
		b.ReportMetric(hybrid/float64(len(rows)), "kdhybrid_relerr_pct")
		b.ReportMetric(noisymean/float64(len(rows)), "kdnoisymean_relerr_pct")
	}
}

// BenchmarkFigure6 regenerates Figure 6: accuracy vs tree height for the
// representative methods at ε = 0.5.
func BenchmarkFigure6(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 1, H: 1}, {W: 10, H: 10}, {W: 15, H: 0.2}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure6(env, []int{5, 6, 7, 8}, 0.5, shapes)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Errors["quad-opt"], "quadopt_h8_relerr_pct")
		b.ReportMetric(last.Errors["kd-hybrid"], "kdhybrid_h8_relerr_pct")
	}
}

// BenchmarkFigure7Build regenerates Figure 7(a): construction time per
// method. Times are reported in milliseconds.
func BenchmarkFigure7Build(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure7a(env, 6, 8, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Method {
			case "quadtree":
				b.ReportMetric(float64(r.Build.Milliseconds()), "quad_build_ms")
			case "kd-hybrid":
				b.ReportMetric(float64(r.Build.Milliseconds()), "kdhybrid_build_ms")
			case "hilbert-r":
				b.ReportMetric(float64(r.Build.Milliseconds()), "hilbertr_build_ms")
			case "kd-cell":
				b.ReportMetric(float64(r.Build.Milliseconds()), "kdcell_build_ms")
			}
		}
	}
}

// BenchmarkFigure7Matching regenerates Figure 7(b): record-matching
// reduction ratio vs ε for the three blocking methods.
func BenchmarkFigure7Matching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure7b(
			eval.Figure7bConfig{PartySize: 4000, Height: 5, Reps: 2, Seed: 17},
			[]float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Ratios["kd-standard"], "kdstandard_rr_eps05")
		b.ReportMetric(last.Ratios["kd-noisymean"], "kdnoisymean_rr_eps05")
		b.ReportMetric(last.Ratios["quad-baseline"], "quadbaseline_rr_eps05")
	}
}

// BenchmarkGridBaseline regenerates the Section 1 motivation: flat
// fine-grid [6] vs the optimized quadtree.
func BenchmarkGridBaseline(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.GridBaseline(env, 1024, 8, 0.5, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GridErr, "grid_relerr_pct")
		b.ReportMetric(rows[0].QuadErr, "quadopt_relerr_pct")
	}
}

// BenchmarkAblationSwitchLevel sweeps the hybrid tree's switch level
// (Section 8.2: "switching about half-way down gives the best result").
func BenchmarkAblationSwitchLevel(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.SwitchLevelSweep(env, 6, 0.5, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Errors["(10,10)"], "l0_relerr_pct")
		b.ReportMetric(rows[3].Errors["(10,10)"], "l3_relerr_pct")
		b.ReportMetric(rows[6].Errors["(10,10)"], "l6_relerr_pct")
	}
}

// BenchmarkAblationCountFraction sweeps εcount/ε (Section 8.2 settles on
// 0.7).
func BenchmarkAblationCountFraction(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	fracs := []float64{0.3, 0.5, 0.7, 0.9}
	for i := 0; i < b.N; i++ {
		rows, err := eval.CountFractionSweep(env, 6, 0.5, fracs, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Errors["(10,10)"], "frac03_relerr_pct")
		b.ReportMetric(rows[2].Errors["(10,10)"], "frac07_relerr_pct")
	}
}

// BenchmarkAblationGeometricRatio sweeps the geometric budget ratio around
// the Lemma 3 optimum 2^(1/3).
func BenchmarkAblationGeometricRatio(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	ratios := []float64{1.0, 1.26, 1.6, 2.0}
	for i := 0; i < b.N; i++ {
		rows, err := eval.GeometricRatioSweep(env, 8, 0.2, ratios, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Errors["(10,10)"], "ratio1_relerr_pct")
		b.ReportMetric(rows[1].Errors["(10,10)"], "ratio126_relerr_pct")
	}
}

// BenchmarkAblationHilbertOrder sweeps the Hilbert curve order (Section
// 8.2 found 16-24 equivalent).
func BenchmarkAblationHilbertOrder(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.HilbertOrderSweep(env, 5, 0.5, []uint{16, 18, 22}, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Errors["(10,10)"], "order18_relerr_pct")
	}
}

// BenchmarkAblationPruneThreshold sweeps the Section 7 pruning threshold.
func BenchmarkAblationPruneThreshold(b *testing.B) {
	env := quickEnv(b)
	shapes := []workload.QueryShape{{W: 10, H: 10}}
	for i := 0; i < b.N; i++ {
		rows, err := eval.PruneThresholdSweep(env, 6, 0.2, []float64{0, 32, 128}, shapes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Errors["(10,10)"], "noprune_relerr_pct")
		b.ReportMetric(rows[1].Errors["(10,10)"], "prune32_relerr_pct")
	}
}

// BenchmarkBuildQuadOptH10 measures raw construction of the paper's
// best-performing configuration (quad-opt at h=10) on the quick dataset.
func BenchmarkBuildQuadOptH10(b *testing.B) {
	env := quickEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := Build(env.Data.Points, env.Data.Domain, Options{
			Kind: QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = tree
	}
}

// BenchmarkBuild measures construction throughput for the representative
// configurations (BuildBenchConfigs — shared with psdbench's JSON report)
// across parallelism levels on the QuickScale dataset. The par=1 case is
// the sequential baseline the speedup claims compare against; releases are
// byte-identical across the axis, so the comparison is pure scheduling.
// points/sec is the headline metric; allocs/op tracks the allocation-lean
// median path.
func BenchmarkBuild(b *testing.B) {
	env := quickEnv(b)
	for _, c := range BuildBenchConfigs() {
		for _, par := range BenchParallelisms() {
			b.Run(fmt.Sprintf("%s/par=%d", c.Name, par), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := Build(env.Data.Points, env.Data.Domain, Options{
						Kind: c.Kind, Height: c.Height, Epsilon: 0.5,
						Seed: int64(i + 1), Parallelism: par,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(env.Data.Points))*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}

// BenchmarkCountAll measures batch range-query throughput (the serving
// path) across the parallelism axis, for both read engines: the arena
// (pointer-per-node tree) and the sealed slab (structure-of-arrays). The
// two return bit-identical answers; the axis isolates the layout.
func BenchmarkCountAll(b *testing.B) {
	env := quickEnv(b)
	tree, err := Build(env.Data.Points, env.Data.Domain, Options{
		Kind: QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	slab := tree.Seal()
	qs, err := env.Queries(workload.QueryShape{W: 10, H: 10})
	if err != nil {
		b.Fatal(err)
	}
	// A serving-sized batch: repeat the workload to 960 queries.
	batch := make([]Rect, 0, 960)
	for len(batch) < 960 {
		batch = append(batch, qs.Rects...)
	}
	engines := []struct {
		name string
		run  func([]Rect, int) []float64
	}{
		{"arena", tree.inner.CountAllWorkers},
		{"slab", slab.inner.CountAllWorkers},
	}
	for _, eng := range engines {
		for _, par := range BenchParallelisms() {
			b.Run(fmt.Sprintf("%s/batch960/par=%d", eng.name, par), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				var out []float64
				for i := 0; i < b.N; i++ {
					out = eng.run(batch, par)
				}
				_ = out
				b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			})
		}
	}
}

// BenchmarkCountBatch measures the node-major batch engine across the
// kind × batch-size × parallelism axes, against the same 10%×10% workload
// BenchmarkCountAll answers one DFS at a time — the two report the same
// queries/sec metric, so the node-major speedup reads directly off the
// pair. Answers are bit-identical to the per-query path (pinned by
// TestCountBatchMatchesPerQuery and FuzzCountBatch); allocs/op is the
// steady-state bar, 0 at par=1.
func BenchmarkCountBatch(b *testing.B) {
	env := quickEnv(b)
	qs, err := env.Queries(workload.QueryShape{W: 10, H: 10})
	if err != nil {
		b.Fatal(err)
	}
	kinds := []struct {
		name string
		kind Kind
		h    int
	}{
		{"quad-h10", QuadtreeKind, 10},
		{"kd-h8", KDTree, 8},
		// The adaptive tree: most of the slab is unpublished interior, so
		// the batch engine's terminal checks run on the pruned/usable bitsets.
		{"privtree-h8", PrivTreeKind, 8},
	}
	for _, k := range kinds {
		tree, err := Build(env.Data.Points, env.Data.Domain, Options{
			Kind: k.kind, Height: k.h, Epsilon: 0.5, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		slab := tree.Seal()
		for _, size := range []int{256, 1024, 4096} {
			batch := make([]Rect, 0, size)
			for len(batch) < size {
				batch = append(batch, qs.Rects...)
			}
			batch = batch[:size]
			out := make([]float64, size)
			for _, par := range BenchParallelisms() {
				b.Run(fmt.Sprintf("%s/n=%d/par=%d", k.name, size, par), func(b *testing.B) {
					slab.inner.CountBatchInto(out, batch, par) // warm the pools
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						slab.inner.CountBatchInto(out, batch, par)
					}
					b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
				})
			}
		}
	}
}

// BenchmarkQuery measures single range-query latency on both read engines,
// for a small (1%×1%) and a large (most-of-the-domain) rectangle. Allocs
// are reported because the acceptance bar is zero: single queries must not
// allocate (the DFS stacks are pooled).
func BenchmarkQuery(b *testing.B) {
	env := quickEnv(b)
	tree, err := Build(env.Data.Points, env.Data.Domain, Options{
		Kind: QuadtreeKind, Height: 10, Epsilon: 0.5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	slab := tree.Seal()
	qs, err := env.Queries(workload.QueryShape{W: 1, H: 1})
	if err != nil {
		b.Fatal(err)
	}
	d := env.Data.Domain
	large := NewRect(
		d.Lo.X+0.05*d.Width(), d.Lo.Y+0.05*d.Height(),
		d.Lo.X+0.95*d.Width(), d.Lo.Y+0.95*d.Height(),
	)
	shapes := []struct {
		name  string
		rects []Rect
	}{
		{"small", qs.Rects},
		{"large", []Rect{large}},
	}
	for _, sh := range shapes {
		b.Run("arena/"+sh.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tree.Count(sh.rects[i%len(sh.rects)])
			}
		})
		b.Run("slab/"+sh.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = slab.Count(sh.rects[i%len(sh.rects)])
			}
		})
	}
}

// BenchmarkOpenRelease measures artifact open latency into the serving form
// (OpenSlab) for the committed golden quadtree release in both encodings —
// the hot-reload path of cmd/psdserve.
func BenchmarkOpenRelease(b *testing.B) {
	for _, enc := range []struct{ name, file string }{
		{"json", "release_quadtree.json"},
		{"binary", "release_quadtree.bin"},
	} {
		data, err := os.ReadFile(filepath.Join("testdata", enc.file))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(enc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := OpenSlab(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTunedBudget compares the Section 4.2 workload-tuned
// budget against the generic geometric allocation on a leaf-heavy workload.
func BenchmarkAblationTunedBudget(b *testing.B) {
	env := quickEnv(b)
	qs, err := env.Queries(workload.QueryShape{W: 1, H: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		meanErr := func(tune []Rect) float64 {
			tree, err := Build(env.Data.Points, env.Data.Domain, Options{
				Kind: QuadtreeKind, Height: 8, Epsilon: 0.1, Seed: int64(i),
				TuneToWorkload: tune,
			})
			if err != nil {
				b.Fatal(err)
			}
			var errs []float64
			for j, q := range qs.Rects {
				errs = append(errs, 100*abs64(tree.Count(q)-qs.Answers[j])/qs.Answers[j])
			}
			return median64(errs)
		}
		b.ReportMetric(meanErr(qs.Rects), "tuned_relerr_pct")
		b.ReportMetric(meanErr(nil), "geometric_relerr_pct")
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func median64(xs []float64) float64 { return workload.Median(xs) }
