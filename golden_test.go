package psd

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden release fixtures: one serialized release per Kind at a fixed seed,
// checked byte-for-byte. They pin the on-disk artifact format — a release
// written by an old commit must keep opening (and answering) identically —
// and give cmd/psdserve and CI a stable artifact to serve end-to-end.
// Regenerate with:
//
//	go test . -run TestGoldenReleases -update

var updateGolden = flag.Bool("update", false, "rewrite golden release fixtures under testdata/")

// goldenKinds lists every decomposition family with its fixture file name.
var goldenKinds = []struct {
	kind Kind
	name string
}{
	{QuadtreeKind, "quadtree"},
	{KDTree, "kd"},
	{KDHybrid, "kd-hybrid"},
	{HilbertRTree, "hilbert-r"},
	{KDCellTree, "kd-cell"},
	{KDNoisyMeanTree, "kd-noisymean"},
	{PrivTreeKind, "privtree"},
}

// goldenDomain and goldenSeed fix the fixture build inputs.
var goldenDomain = NewRect(0, 0, 100, 100)

const goldenSeed = 4242

func goldenBuild(t *testing.T, kind Kind) *Tree {
	t.Helper()
	pts := clusteredPoints(5000, goldenDomain, 99)
	opts := Options{Kind: kind, Height: 3, Epsilon: 1, Seed: goldenSeed}
	if kind == PrivTreeKind {
		// Deep enough that the adaptive recursion actually stops early in
		// the sparse half, so the fixture pins the pruned + partially
		// published artifact shape, not just a fully split quadtree.
		opts.Height, opts.MaxDepth = 0, 5
	}
	tree, err := Build(pts, goldenDomain, opts)
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return tree
}

// goldenQueries is the fixed query set every fixture must answer
// identically through a reopened release.
func goldenQueries() []Rect {
	return []Rect{
		goldenDomain,
		NewRect(0, 0, 50, 50),
		NewRect(25, 25, 75, 75),
		NewRect(10, 60, 90, 95),
		NewRect(47, 47, 53, 53),
		NewRect(0, 0, 12.5, 100),
	}
}

func TestGoldenReleases(t *testing.T) {
	for _, g := range goldenKinds {
		t.Run(g.name, func(t *testing.T) {
			tree := goldenBuild(t, g.kind)
			var buf bytes.Buffer
			if err := tree.WriteRelease(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "release_"+g.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("serialized release differs from %s (%d vs %d bytes); "+
					"if the format change is intentional, regenerate with -update",
					path, buf.Len(), len(golden))
			}

			// The reopened fixture answers the fixed query set exactly as the
			// builder's tree does, and re-serializes byte-identically.
			reopened, err := OpenRelease(bytes.NewReader(golden))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range goldenQueries() {
				if a, b := tree.Count(q), reopened.Count(q); a != b {
					t.Errorf("query %v: built %v, reopened %v", q, a, b)
				}
			}
			var again bytes.Buffer
			if err := reopened.WriteRelease(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), golden) {
				t.Error("reopened release does not re-serialize identically")
			}
		})
	}
}

// TestGoldenBinaryReleases pins the binary format v2 on-disk artifacts the
// same way: one release_<kind>.bin per family, checked byte-for-byte, and
// required to answer the fixed query set bit-identically to both the
// builder's tree and the JSON fixture opened as a slab. Regenerate with
// -update alongside the JSON fixtures.
func TestGoldenBinaryReleases(t *testing.T) {
	for _, g := range goldenKinds {
		t.Run(g.name, func(t *testing.T) {
			tree := goldenBuild(t, g.kind)
			var buf bytes.Buffer
			if err := tree.WriteBinaryRelease(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "release_"+g.name+".bin")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("binary release differs from %s (%d vs %d bytes); "+
					"if the format change is intentional, regenerate with -update",
					path, buf.Len(), len(golden))
			}

			// The binary fixture opens as a slab and answers exactly as the
			// builder's tree; the JSON fixture opened as a slab must agree
			// bit-for-bit, pinning JSON↔binary equivalence.
			binSlab, err := OpenSlab(bytes.NewReader(golden))
			if err != nil {
				t.Fatal(err)
			}
			jsonBytes, err := os.ReadFile(filepath.Join("testdata", "release_"+g.name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			jsonSlab, err := OpenSlab(bytes.NewReader(jsonBytes))
			if err != nil {
				t.Fatal(err)
			}
			sealed := tree.Seal()
			for _, q := range goldenQueries() {
				want := tree.Count(q)
				if got := binSlab.Count(q); got != want {
					t.Errorf("query %v: binary slab %v, built %v", q, got, want)
				}
				if got := jsonSlab.Count(q); got != want {
					t.Errorf("query %v: json slab %v, built %v", q, got, want)
				}
				if got := sealed.Count(q); got != want {
					t.Errorf("query %v: sealed slab %v, built %v", q, got, want)
				}
			}

			// Both directions of conversion are lossless: binary -> JSON
			// matches the JSON fixture, JSON -> binary matches the binary one.
			var toJSON bytes.Buffer
			if err := binSlab.WriteRelease(&toJSON); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toJSON.Bytes(), jsonBytes) {
				t.Error("binary fixture does not convert to the JSON fixture byte-identically")
			}
			var toBin bytes.Buffer
			if err := jsonSlab.WriteBinaryRelease(&toBin); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toBin.Bytes(), golden) {
				t.Error("JSON fixture does not convert to the binary fixture byte-identically")
			}

			// OpenRelease (the arena path) accepts the binary artifact too.
			reopened, err := OpenRelease(bytes.NewReader(golden))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range goldenQueries() {
				if got, want := reopened.Count(q), tree.Count(q); got != want {
					t.Errorf("query %v: arena-opened binary %v, built %v", q, got, want)
				}
			}
		})
	}
}

// TestGoldenV3Releases pins the record-major binary format v3 the same way:
// one release_<kind>.v3.bin per family, checked byte-for-byte, required to
// answer the fixed query set bit-identically through both read paths — the
// streaming decoder and the zero-copy mmap open — and to convert losslessly
// to and from the v2 fixture. Regenerate with -update alongside the others.
func TestGoldenV3Releases(t *testing.T) {
	for _, g := range goldenKinds {
		t.Run(g.name, func(t *testing.T) {
			tree := goldenBuild(t, g.kind)
			var buf bytes.Buffer
			if err := tree.WriteBinaryV3Release(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "release_"+g.name+".v3.bin")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("v3 release differs from %s (%d vs %d bytes); "+
					"if the format change is intentional, regenerate with -update",
					path, buf.Len(), len(golden))
			}

			// Both v3 read paths answer exactly as the builder's tree: the
			// streaming decoder and the mmap open OpenSlabFile prefers.
			decoded, err := OpenSlab(bytes.NewReader(golden))
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := OpenSlabFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if err := mapped.Verify(); err != nil {
				t.Fatalf("Verify on the golden fixture: %v", err)
			}
			for _, q := range goldenQueries() {
				want := tree.Count(q)
				if got := decoded.Count(q); got != want {
					t.Errorf("query %v: v3 decoded slab %v, built %v", q, got, want)
				}
				if got := mapped.Count(q); got != want {
					t.Errorf("query %v: v3 mmap slab %v, built %v", q, got, want)
				}
			}

			// Conversion is lossless in both directions against the v2 fixture.
			v2golden, err := os.ReadFile(filepath.Join("testdata", "release_"+g.name+".bin"))
			if err != nil {
				t.Fatal(err)
			}
			var toV2 bytes.Buffer
			if err := decoded.WriteBinaryRelease(&toV2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toV2.Bytes(), v2golden) {
				t.Error("v3 fixture does not convert to the v2 fixture byte-identically")
			}
			v2slab, err := OpenSlab(bytes.NewReader(v2golden))
			if err != nil {
				t.Fatal(err)
			}
			var toV3 bytes.Buffer
			if err := v2slab.WriteBinaryV3Release(&toV3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(toV3.Bytes(), golden) {
				t.Error("v2 fixture does not convert to the v3 fixture byte-identically")
			}
		})
	}
}

// goldenQueryFile is the schema of testdata/golden_queries.json: the
// quadtree fixture's fixed queries with their expected answers, consumed by
// the cmd/psdserve end-to-end test and the CI curl check.
type goldenQueryFile struct {
	Release string `json:"release"`
	Queries []struct {
		Rect  [4]float64 `json:"rect"`
		Count float64    `json:"count"`
	} `json:"queries"`
}

func TestGoldenQueryAnswers(t *testing.T) {
	path := filepath.Join("testdata", "golden_queries.json")
	tree := goldenBuild(t, QuadtreeKind)
	if *updateGolden {
		var out goldenQueryFile
		out.Release = "quadtree"
		for _, q := range goldenQueries() {
			out.Queries = append(out.Queries, struct {
				Rect  [4]float64 `json:"rect"`
				Count float64    `json:"count"`
			}{
				Rect:  [4]float64{q.Lo.X, q.Lo.Y, q.Hi.X, q.Hi.Y},
				Count: tree.Count(q),
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	var in goldenQueryFile
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	if in.Release != "quadtree" || len(in.Queries) != len(goldenQueries()) {
		t.Fatalf("unexpected fixture shape: %q, %d queries", in.Release, len(in.Queries))
	}
	for i, q := range in.Queries {
		r := NewRect(q.Rect[0], q.Rect[1], q.Rect[2], q.Rect[3])
		if got := tree.Count(r); got != q.Count {
			t.Errorf("query %d %v: count %v, fixture %v", i, r, got, q.Count)
		}
	}
}
