package psd

import (
	"io"

	"psd/internal/core"
)

// WriteRelease serializes the tree's private release — the node rectangles
// and released counts, nothing else — as versioned JSON. The artifact is
// safe to publish: it is exactly the ε-differentially private output of the
// build, and contains no exact counts or raw points.
func (t *Tree) WriteRelease(w io.Writer) error {
	_, err := t.inner.Release().WriteTo(w)
	return err
}

// OpenRelease reconstructs a query-only Tree from a serialized release.
// The result answers Count and Regions exactly as the original tree did;
// it requires no access to the original data.
func OpenRelease(r io.Reader) (*Tree, error) {
	rel, err := core.ReadRelease(r)
	if err != nil {
		return nil, err
	}
	p, err := core.OpenRelease(rel)
	if err != nil {
		return nil, err
	}
	return &Tree{inner: p}, nil
}
