package psd

import (
	"bufio"
	"io"

	"psd/internal/core"
)

// WriteRelease serializes the tree's private release — the node rectangles
// and released counts, nothing else — as versioned JSON (format 1). The
// artifact is safe to publish: it is exactly the ε-differentially private
// output of the build, and contains no exact counts or raw points.
func (t *Tree) WriteRelease(w io.Writer) error {
	_, err := t.inner.Release().WriteTo(w)
	return err
}

// WriteBinaryRelease serializes the tree's private release in the binary
// columnar format v2: the same artifact as WriteRelease, encoded as raw
// little-endian float64 columns that OpenSlab decodes straight into the
// serving layout with no per-count allocation. Use it for artifacts a
// server will (re)load; use JSON where a human or another toolchain reads
// the release.
func (t *Tree) WriteBinaryRelease(w io.Writer) error {
	_, err := t.inner.Release().WriteBinary(w)
	return err
}

// OpenSlab reconstructs the flat serving form of a serialized release,
// accepting either format — versioned JSON (format 1) or binary columnar
// (format 2), distinguished by the leading magic bytes. This is the path
// cmd/psdserve loads artifacts through: a binary artifact decodes straight
// into the slab columns.
func OpenSlab(r io.Reader) (*Slab, error) {
	inner, err := openSlab(r)
	if err != nil {
		return nil, err
	}
	return &Slab{inner: inner}, nil
}

func openSlab(r io.Reader) (*core.Slab, error) {
	br := bufio.NewReader(r)
	prefix, _ := br.Peek(4)
	if core.SniffBinary(prefix) {
		return core.ReadBinary(br)
	}
	// Anything else (including too-short input) goes to the JSON reader,
	// which reports the parse error.
	return core.ReadSlab(br)
}

// OpenRelease reconstructs a query-only Tree from a serialized release in
// either format (see OpenSlab). The result answers Count and Regions
// exactly as the original tree did; it requires no access to the original
// data. Servers should prefer OpenSlab, whose flat layout is cheaper to
// load and query.
func OpenRelease(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(4); err == nil && core.SniffBinary(prefix) {
		slab, err := core.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		p, err := core.OpenRelease(slab.Release())
		if err != nil {
			return nil, err
		}
		return &Tree{inner: p}, nil
	}
	rel, err := core.ReadRelease(br)
	if err != nil {
		return nil, err
	}
	p, err := core.OpenRelease(rel)
	if err != nil {
		return nil, err
	}
	return &Tree{inner: p}, nil
}
