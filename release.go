package psd

import (
	"bufio"
	"errors"
	"io"
	"os"

	"psd/internal/core"
)

// WriteRelease serializes the tree's private release — the node rectangles
// and released counts, nothing else — as versioned JSON (format 1). The
// artifact is safe to publish: it is exactly the ε-differentially private
// output of the build, and contains no exact counts or raw points.
func (t *Tree) WriteRelease(w io.Writer) error {
	_, err := t.inner.Release().WriteTo(w)
	return err
}

// WriteBinaryRelease serializes the tree's private release in the binary
// columnar format v2: the same artifact as WriteRelease, encoded as raw
// little-endian float64 columns that OpenSlab decodes straight into the
// serving layout with no per-count allocation. Use it for artifacts a
// server will (re)load; use JSON where a human or another toolchain reads
// the release.
func (t *Tree) WriteBinaryRelease(w io.Writer) error {
	_, err := t.inner.Release().WriteBinary(w)
	return err
}

// WriteBinaryV3Release serializes the tree's private release in the
// record-major binary format v3 — the same artifact as WriteRelease, laid
// out so that OpenSlabFile serves it zero-copy via mmap: the node section
// is exactly the serving slab's packed 40-byte records, 64-byte aligned,
// with a trailing CRC-64 checksum. Use it for large artifacts that serving
// replicas open; v2 and JSON remain fully supported.
func (t *Tree) WriteBinaryV3Release(w io.Writer) error {
	_, err := t.inner.Release().WriteBinaryV3(w)
	return err
}

// OpenSlab reconstructs the flat serving form of a serialized release,
// accepting either format — versioned JSON (format 1) or binary columnar
// (format 2), distinguished by the leading magic bytes. This is the path
// cmd/psdserve loads artifacts through: a binary artifact decodes straight
// into the slab columns.
func OpenSlab(r io.Reader) (*Slab, error) {
	inner, err := openSlab(r)
	if err != nil {
		return nil, err
	}
	return &Slab{inner: inner}, nil
}

// OpenSlabFile opens a serialized release from a file, choosing the
// cheapest path the artifact and platform allow. A format-v3 artifact on a
// little-endian unix host is opened zero-copy: mmap(2) plus header and
// bitset validation, with the node records left on disk until queries
// fault them in — open cost is independent of artifact size, and replicas
// serving the same file share one page cache. Everything else (v2, JSON,
// v3 on platforms without mmap) is read and decoded as OpenSlab would.
//
// The zero-copy path does not read the node section, so it cannot check
// the artifact's checksum; call Verify afterwards to force the full-body
// validation pass (the serving registry does). Close the returned slab to
// unmap deterministically, or drop it and let the GC cleanup unmap.
func OpenSlabFile(path string) (*Slab, error) {
	inner, err := core.OpenSlabMmap(path)
	if err == nil {
		return &Slab{inner: inner}, nil
	}
	// A failure to open or stat the file would fail the read path the same
	// way: surface it. Anything else — not a v3 artifact, no mmap on this
	// platform, an mmap(2) refusal from an exotic filesystem — falls back
	// to reading and decoding, which also runs the full validation, so a
	// genuinely corrupt v3 artifact reports its precise decode error.
	var pe *os.PathError
	if errors.As(err, &pe) && pe.Op != "mmap" {
		return nil, err
	}
	f, ferr := os.Open(path)
	if ferr != nil {
		return nil, ferr
	}
	defer f.Close()
	return OpenSlab(f)
}

func openSlab(r io.Reader) (*core.Slab, error) {
	br := bufio.NewReader(r)
	prefix, _ := br.Peek(4)
	if core.SniffBinary(prefix) {
		return core.ReadBinary(br)
	}
	// Anything else (including too-short input) goes to the JSON reader,
	// which reports the parse error.
	return core.ReadSlab(br)
}

// OpenRelease reconstructs a query-only Tree from a serialized release in
// either format (see OpenSlab). The result answers Count and Regions
// exactly as the original tree did; it requires no access to the original
// data. Servers should prefer OpenSlab, whose flat layout is cheaper to
// load and query.
func OpenRelease(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(4); err == nil && core.SniffBinary(prefix) {
		slab, err := core.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		p, err := core.OpenRelease(slab.Release())
		if err != nil {
			return nil, err
		}
		return &Tree{inner: p}, nil
	}
	rel, err := core.ReadRelease(br)
	if err != nil {
		return nil, err
	}
	p, err := core.OpenRelease(rel)
	if err != nil {
		return nil, err
	}
	return &Tree{inner: p}, nil
}
