#!/usr/bin/env bash
# Fleet end-to-end check: 3 psdserve replicas behind psdproxy, serving the
# golden v3 (zero-copy mmap) release. A query loop runs through the proxy
# while one replica is SIGKILLed mid-loop; the contract is ZERO failed
# queries, bit-identical answers throughout (a release's noise is fixed at
# publish time, so failover must never change an answer), and the proxy's
# /metrics reporting the killed backend down once the health checker
# converges.
#
# Usage: scripts/fleet_e2e.sh   (from the repo root; needs curl + jq)
set -euo pipefail

cd "$(dirname "$0")/.."

P1=8181 P2=8182 P3=8183 PP=8190
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== building psdserve + psdproxy"
go build -o /tmp/psdserve ./cmd/psdserve
go build -o /tmp/psdproxy ./cmd/psdproxy

echo "== starting 3 replicas over the golden v3 release"
for port in $P1 $P2 $P3; do
  /tmp/psdserve -addr "127.0.0.1:$port" \
    -release quadv3=testdata/release_quadtree.v3.bin \
    -release privv3=testdata/release_privtree.v3.bin &
  PIDS+=($!)
done

echo "== starting psdproxy (fast health: 250ms probes, down after 3)"
/tmp/psdproxy -addr "127.0.0.1:$PP" \
  -backend "http://127.0.0.1:$P1" \
  -backend "http://127.0.0.1:$P2" \
  -backend "http://127.0.0.1:$P3" \
  -probe-interval 250ms -probe-timeout 1s -down-after 3 -up-after 2 &
PROXY_PID=$!
PIDS+=($PROXY_PID)

up() { curl -fs -o /dev/null "$1"; }
for i in $(seq 1 100); do
  up "http://127.0.0.1:$PP/readyz" && break
  sleep 0.1
done
up "http://127.0.0.1:$PP/readyz" || { echo "proxy never became ready"; exit 1; }
curl -fs "http://127.0.0.1:$PP/stats" | jq -e '.backends | length == 3' >/dev/null

echo "== recording pre-kill baseline answers through the proxy"
mapfile -t RECTS < <(jq -r '.queries[].rect | join(",")' testdata/golden_queries.json)
BASE=()
for rect in "${RECTS[@]}"; do
  BASE+=("$(curl -fs "http://127.0.0.1:$PP/v1/releases/quadv3/count?rect=$rect" | jq -r '.count')")
done
# Sanity: the first baseline answer matches the golden recording.
want=$(jq -r '.queries[0].count' testdata/golden_queries.json)
awk -v a="${BASE[0]}" -v b="$want" \
  'BEGIN { d = a-b; if (d < 0) d = -d; exit !(d <= 1e-6 * (1 + (b < 0 ? -b : b))) }'

echo "== query loop with a SIGKILL mid-loop"
FAILED=0
TOTAL=0
for round in $(seq 1 40); do
  if [ "$round" -eq 10 ]; then
    echo "   SIGKILL replica :$P1 (round $round)"
    kill -9 "${PIDS[0]}"
  fi
  for i in "${!RECTS[@]}"; do
    TOTAL=$((TOTAL + 1))
    got=$(curl -fs "http://127.0.0.1:$PP/v1/releases/quadv3/count?rect=${RECTS[$i]}" | jq -r '.count') || got="CURL_FAILED"
    if [ "$got" != "${BASE[$i]}" ]; then
      echo "   QUERY FAILED round=$round rect=${RECTS[$i]}: got '$got', want '${BASE[$i]}'"
      FAILED=$((FAILED + 1))
    fi
  done
done
echo "   $TOTAL queries, $FAILED failures"
test "$FAILED" -eq 0

echo "== waiting for the health checker to mark the killed replica down"
DOWN=""
for i in $(seq 1 40); do
  if curl -fs "http://127.0.0.1:$PP/metrics" \
      | grep -q "psdproxy_backend_state{backend=\"http://127.0.0.1:$P1\"} 0"; then
    DOWN=yes
    break
  fi
  sleep 0.25
done
test -n "$DOWN" || { echo "killed backend never reported down in /metrics"; exit 1; }
curl -fs "http://127.0.0.1:$PP/metrics" | grep -q "psdproxy_backends_routable 2"
curl -fs "http://127.0.0.1:$PP/readyz" | jq -e '.routable == 2' >/dev/null
curl -fs "http://127.0.0.1:$PP/stats" | jq -e '.failovers >= 0 and .no_replica_503 == 0' >/dev/null

echo "== batch path through the proxy (read-only POST is proxied)"
jq -c '{rects: [.queries[].rect]}' testdata/golden_queries.json > /tmp/fleetbatch.json
curl -fs -X POST --data @/tmp/fleetbatch.json \
  "http://127.0.0.1:$PP/v1/releases/quadv3/batch" | jq -e ".counts | length == ${#RECTS[@]}" >/dev/null

echo "== direct mutation through the proxy is refused (405)"
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://127.0.0.1:$PP/v1/releases/quadv3")
test "$code" = 405

echo "== graceful proxy drain"
kill -TERM "$PROXY_PID"
sleep 0.3
test "$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PP/readyz")" = 503 || true
wait "$PROXY_PID"

echo "fleet e2e: OK ($TOTAL queries, zero failures, kill absorbed)"
