#!/usr/bin/env bash
# Static-analysis gate — the exact entry point CI's lint job runs, so a
# local `bash scripts/lint.sh` reproduces the gate before pushing.
#
# Hard gate: go vet, then psdlint (the project's custom analyzer suite:
# determinism, fsyncdiscipline, unsafeconfine, closecheck, ctxpoll) driven
# through `go vet -vettool` so package loading, caching, and test-variant
# packages behave exactly as vet does.
#
# Advisory extras: staticcheck and govulncheck run when they are on PATH
# (CI installs them; a plain local checkout usually has neither — they are
# skipped, not failed, because this container must stay offline-buildable).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> psdlint (custom analyzers via go vet -vettool)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/psdlint" ./cmd/psdlint
go vet -vettool="$tmpdir/psdlint" ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck (advisory)"
  staticcheck ./... || echo "staticcheck: findings above are advisory"
fi
if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck (advisory)"
  govulncheck ./... || echo "govulncheck: findings above are advisory"
fi

echo "lint: OK"
