#!/usr/bin/env bash
# Ingest end-to-end kill-recovery check: a real psdingest binary is SIGKILLed
# over and over — mid-append, with a point flood in flight, and mid-publish,
# right after a publish is triggered — and restarted against the same state
# directory. The contract, checked after every kill:
#
#   * zero lost acknowledged points: every batch that got a 200 is present
#     after recovery (the 200 IS the durability ack);
#   * the WAL recovers clean (torn tails truncated, never sticky-broken);
#   * the privacy ledger is monotone: ε spent never decreases across a crash;
#   * the publish pipeline is never wedged by a kill (only live I/O faults
#     wedge; a restart always recovers).
#
# After the loop, `psdingest verify` rebuilds every published version from
# the WAL and bit-compares journal CRC vs fresh rebuild vs on-disk artifact —
# the byte-identical-recovery guarantee, audited end to end. Finally psdserve
# watches the publish directory and must serve the versioned artifacts:
# bare-name → latest, ?version= time travel, exact name@vN addressing.
#
# Usage: scripts/ingest_e2e.sh   (from the repo root; needs curl + jq)
set -euo pipefail

cd "$(dirname "$0")/.."

PORT=9191 SPORT=9192
WORK=$(mktemp -d)
STATE=$WORK/state PUBLISH=$WORK/publish
ACKS=$WORK/acks
: > "$ACKS"
BF=(-name taxi -state "$STATE" -publish "$PUBLISH" -domain 0,0,100,100
    -kind quadtree -height 5 -seed 42 -budget 1000 -epoch-eps 1)

DPID="" FLOOD_PID="" SERVE_PID=""
cleanup() {
  for pid in "$DPID" "$FLOOD_PID" "$SERVE_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building psdingest + psdserve"
go build -o /tmp/psdingest ./cmd/psdingest
go build -o /tmp/psdserve ./cmd/psdserve

start_daemon() {
  /tmp/psdingest -addr "127.0.0.1:$PORT" -rebuild-count 500 "${BF[@]}" \
    2>>"$WORK/daemon.log" &
  DPID=$!
  for i in $(seq 1 100); do
    curl -fs -o /dev/null "http://127.0.0.1:$PORT/readyz" && return 0
    sleep 0.1
  done
  echo "daemon never became ready"; tail "$WORK/daemon.log"; exit 1
}

# flood streams 200-point batches; every 200 response appends its acked
# count to $ACKS. A batch whose response never arrives is deliberately NOT
# recorded: the client contract is exactly "no 200, no durability claim".
flood() {
  local salt=$1
  while :; do
    local body
    body=$(jq -cn --argjson s "$salt" \
      '{points: [range(200) | [(. % 97) + $s/1000, (. % 89) + $s/2000]]}')
    local added
    added=$(curl -fs -X POST --data "$body" \
      "http://127.0.0.1:$PORT/ingest" 2>/dev/null | jq -r '.added') || break
    [ "$added" = 200 ] && echo "$added" >> "$ACKS"
    salt=$((salt + 1))
  done
}

stats() { curl -fs "http://127.0.0.1:$PORT/stats"; }

LAST_SPENT=0
ROUNDS=6
for round in $(seq 1 $ROUNDS); do
  echo "== round $round/$ROUNDS: start, verify recovery, flood, SIGKILL"
  start_daemon
  ST=$(stats)

  # Zero lost acknowledged points: everything acked before the last kill
  # must have been replayed from the WAL.
  ACKED=$(awk '{s += $1} END {print s + 0}' "$ACKS")
  POINTS=$(jq -r '.points' <<<"$ST")
  if [ "$POINTS" -lt "$ACKED" ]; then
    echo "   LOST POINTS: acked $ACKED, recovered $POINTS"; exit 1
  fi
  # The WAL must recover clean, the pipeline un-wedged, after every kill.
  jq -e '.wal_broken == false and ((.wedged // "") == "")' <<<"$ST" >/dev/null

  # Monotone ledger: a crash never un-spends ε.
  SPENT=$(jq -r '.spent' <<<"$ST")
  awk -v a="$SPENT" -v b="$LAST_SPENT" 'BEGIN { exit !(a >= b) }' || {
    echo "   LEDGER WENT BACKWARD: spent $SPENT after $LAST_SPENT"; exit 1
  }
  LAST_SPENT=$SPENT
  echo "   recovered: $POINTS points (>= $ACKED acked), v$(jq -r '.latest_version' <<<"$ST"), ε spent $SPENT"

  flood "$round" &
  FLOOD_PID=$!
  # Let the flood land some batches (and cross -rebuild-count publish
  # cadences); odd rounds also fire a manual publish and kill within
  # milliseconds to land inside the 5-step publish cycle.
  sleep 0.7
  if [ $((round % 2)) -eq 1 ]; then
    curl -s -o /dev/null -X POST "http://127.0.0.1:$PORT/publish" &
    sleep 0.02
  fi
  kill -9 "$DPID" 2>/dev/null || true
  wait "$DPID" 2>/dev/null || true
  DPID=""
  kill "$FLOOD_PID" 2>/dev/null || true
  wait "$FLOOD_PID" 2>/dev/null || true
  FLOOD_PID=""
done

echo "== final restart + publish everything pending"
start_daemon
curl -s -o /dev/null -X POST "http://127.0.0.1:$PORT/publish" || true
ST=$(stats)
VERSIONS=$(jq -r '.latest_version' <<<"$ST")
RECOVERED=$(jq -r '.recovered' <<<"$ST")
POINTS=$(jq -r '.points' <<<"$ST")
echo "   $POINTS points, $VERSIONS versions, $RECOVERED publication(s) rolled forward by recovery"
test "$VERSIONS" -ge 1
kill -TERM "$DPID"; wait "$DPID" 2>/dev/null || true; DPID=""

echo "== audit: rebuild every version from the WAL, bit-compare all CRCs"
/tmp/psdingest verify "${BF[@]}" | tee "$WORK/verify.out"
grep -q "all byte-identical" "$WORK/verify.out"
# Guard against the CRC residue footgun: a fingerprint taken with the same
# polynomial as the artifact's embedded footer CRC is one constant for every
# valid artifact. Distinct versions must carry distinct fingerprints.
DISTINCT=$(awk -F'journal=' '/^v/ {split($2, a, " "); print a[1]}' "$WORK/verify.out" | sort -u | wc -l)
test "$VERSIONS" -le 1 || test "$DISTINCT" -gt 1 || {
  echo "   DEGENERATE FINGERPRINT: $VERSIONS versions share one CRC"; exit 1
}

echo "== serving the publish directory: versioned resolution + time travel"
/tmp/psdserve -addr "127.0.0.1:$SPORT" -dir "$PUBLISH" 2>>"$WORK/serve.log" &
SERVE_PID=$!
for i in $(seq 1 100); do
  curl -fs -o /dev/null "http://127.0.0.1:$SPORT/healthz" && break
  sleep 0.1
done
RECT="0,0,100,100"
# Bare name resolves to the latest version...
LATEST=$(curl -fs "http://127.0.0.1:$SPORT/v1/releases/taxi/count?rect=$RECT")
jq -e --arg v "taxi@v$VERSIONS" '.release == $v' <<<"$LATEST" >/dev/null
# ...time travel and exact addressing answer bit-identically to each other.
V1TT=$(curl -fs "http://127.0.0.1:$SPORT/v1/releases/taxi/count?rect=$RECT&version=v1" | jq -r '.count')
V1EX=$(curl -fs "http://127.0.0.1:$SPORT/v1/releases/taxi@v1/count?rect=$RECT" | jq -r '.count')
test "$V1TT" = "$V1EX"
curl -fs "http://127.0.0.1:$SPORT/v1/releases/taxi/versions" \
  | jq -e --argjson n "$VERSIONS" '.versions | length == $n' >/dev/null
kill -TERM "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""

echo "ingest e2e: OK ($ROUNDS kills absorbed, $POINTS points, $VERSIONS versions all byte-identical)"
