package psd

import (
	"testing"
)

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(99).String(); got != "unknown" {
		t.Errorf("Kind(99).String() = %q, want %q", got, "unknown")
	}
	if got := Kind(-1).String(); got != "unknown" {
		t.Errorf("Kind(-1).String() = %q, want %q", got, "unknown")
	}
	if got := KDHybrid.String(); got != "kd-hybrid" {
		t.Errorf("KDHybrid.String() = %q, want %q", got, "kd-hybrid")
	}
}

// The public API contract mirrored from core: same Seed ⇒ same release at
// any Parallelism, for the data-dependent default (EM medians).
func TestParallelismDoesNotChangeRelease(t *testing.T) {
	domain := NewRect(0, 0, 100, 100)
	points := clusteredPoints(8000, domain, 21)
	build := func(par int) *Tree {
		tr, err := Build(points, domain, Options{
			Kind: KDHybrid, Height: 5, Epsilon: 0.5, Seed: 77, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seq := build(1)
	for _, par := range []int{0, 2, 8} {
		got := build(par)
		sr, sc := seq.Regions()
		gr, gc := got.Regions()
		if len(sr) != len(gr) {
			t.Fatalf("par=%d: %d regions vs %d", par, len(gr), len(sr))
		}
		for i := range sr {
			if sr[i] != gr[i] || sc[i] != gc[i] {
				t.Fatalf("par=%d: region %d differs", par, i)
			}
		}
		for _, q := range []Rect{
			NewRect(1, 1, 40, 40), NewRect(10, 50, 90, 60), NewRect(0, 0, 100, 100),
		} {
			if seq.Count(q) != got.Count(q) {
				t.Fatalf("par=%d: Count(%v) differs", par, q)
			}
		}
	}
}

func TestCountAllMatchesCount(t *testing.T) {
	domain := NewRect(0, 0, 50, 50)
	points := clusteredPoints(3000, domain, 22)
	tr, err := Build(points, domain, Options{Kind: QuadtreeKind, Height: 5, Epsilon: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Rect, 100)
	for i := range qs {
		f := float64(i)
		qs[i] = NewRect(f*0.3, f*0.2, f*0.3+5, f*0.2+8)
	}
	got := tr.CountAll(qs)
	if len(got) != len(qs) {
		t.Fatalf("CountAll returned %d answers for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		if want := tr.Count(q); got[i] != want {
			t.Errorf("query %d: CountAll=%v Count=%v", i, got[i], want)
		}
	}
}
